//===- parser/parser.cc - Reflex parser -------------------------*- C++ -*-===//

#include "parser/parser.h"

#include "parser/lexer.h"

#include <cassert>

namespace reflex {

namespace {

class Parser {
public:
  Parser(std::vector<Token> Toks, DiagnosticEngine &Diags)
      : Toks(std::move(Toks)), Diags(Diags) {}

  ProgramPtr run() {
    auto P = std::make_unique<Program>();
    if (accept(TokKind::KwProgram)) {
      if (!expectIdent(P->Name) || !expect(TokKind::Semi))
        return nullptr;
    }
    while (!peek().is(TokKind::Eof)) {
      if (!parseDecl(*P))
        return nullptr;
    }
    if (!P->Init)
      P->Init = std::make_unique<NopCmd>(SourceLoc());
    return Diags.hasErrors() ? nullptr : std::move(P);
  }

private:
  //===--------------------------------------------------------------------===
  // Token plumbing
  //===--------------------------------------------------------------------===

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }

  Token advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  bool accept(TokKind K) {
    if (!peek().is(K))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K) {
    if (accept(K))
      return true;
    Diags.error(peek().Loc, std::string("expected ") + tokKindName(K) +
                                ", found " + tokKindName(peek().Kind));
    return false;
  }

  bool expectIdent(std::string &Out) {
    if (!peek().is(TokKind::Ident)) {
      Diags.error(peek().Loc, std::string("expected identifier, found ") +
                                  tokKindName(peek().Kind));
      return false;
    }
    Out = advance().Text;
    return true;
  }

  bool expectType(BaseType &Out) {
    std::string Name;
    SourceLoc Loc = peek().Loc;
    if (!expectIdent(Name))
      return false;
    if (!baseTypeFromName(Name, Out)) {
      Diags.error(Loc, "unknown type '" + Name +
                           "' (expected num, str, bool, or fdesc)");
      return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  bool parseDecl(Program &P) {
    switch (peek().Kind) {
    case TokKind::KwComponent:
      return parseComponent(P);
    case TokKind::KwMessage:
      return parseMessage(P);
    case TokKind::KwVar:
      return parseVar(P);
    case TokKind::KwInit:
      return parseInit(P);
    case TokKind::KwHandler:
      return parseHandler(P);
    case TokKind::KwProperty:
      return parseProperty(P);
    default:
      Diags.error(peek().Loc,
                  std::string("expected a declaration, found ") +
                      tokKindName(peek().Kind));
      return false;
    }
  }

  bool parseComponent(Program &P) {
    SourceLoc Loc = advance().Loc; // 'component'
    ComponentTypeDecl Decl;
    Decl.Loc = Loc;
    if (!expectIdent(Decl.Name))
      return false;
    if (!peek().is(TokKind::String)) {
      Diags.error(peek().Loc, "expected executable path string");
      return false;
    }
    Decl.Executable = advance().Text;
    if (accept(TokKind::LBrace)) {
      if (!peek().is(TokKind::RBrace)) {
        do {
          ConfigField F;
          if (!expectIdent(F.Name) || !expect(TokKind::Colon) ||
              !expectType(F.Type))
            return false;
          if (F.Type == BaseType::Fdesc) {
            Diags.error(Loc, "config fields may not have type fdesc");
            return false;
          }
          Decl.Config.push_back(std::move(F));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RBrace))
        return false;
    }
    if (!expect(TokKind::Semi))
      return false;
    P.Components.push_back(std::move(Decl));
    return true;
  }

  bool parseMessage(Program &P) {
    SourceLoc Loc = advance().Loc; // 'message'
    MessageDecl Decl;
    Decl.Loc = Loc;
    if (!expectIdent(Decl.Name) || !expect(TokKind::LParen))
      return false;
    if (!peek().is(TokKind::RParen)) {
      do {
        BaseType Ty;
        if (!expectType(Ty))
          return false;
        Decl.Payload.push_back(Ty);
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen) || !expect(TokKind::Semi))
      return false;
    P.Messages.push_back(std::move(Decl));
    return true;
  }

  bool parseLiteral(Value &Out) {
    switch (peek().Kind) {
    case TokKind::Number:
      Out = Value::num(advance().NumVal);
      return true;
    case TokKind::String:
      Out = Value::str(advance().Text);
      return true;
    case TokKind::KwTrue:
      advance();
      Out = Value::boolean(true);
      return true;
    case TokKind::KwFalse:
      advance();
      Out = Value::boolean(false);
      return true;
    default:
      Diags.error(peek().Loc, "expected a literal");
      return false;
    }
  }

  bool parseVar(Program &P) {
    SourceLoc Loc = advance().Loc; // 'var'
    StateVarDecl Decl;
    Decl.Loc = Loc;
    if (!expectIdent(Decl.Name) || !expect(TokKind::Colon) ||
        !expectType(Decl.Type) || !expect(TokKind::Equal) ||
        !parseLiteral(Decl.Init) || !expect(TokKind::Semi))
      return false;
    P.StateVars.push_back(std::move(Decl));
    return true;
  }

  bool parseInit(Program &P) {
    SourceLoc Loc = advance().Loc; // 'init'
    if (P.Init) {
      Diags.error(Loc, "duplicate init section");
      return false;
    }
    P.Init = parseBlock();
    return P.Init != nullptr;
  }

  bool parseHandler(Program &P) {
    SourceLoc Loc = advance().Loc; // 'handler'
    Handler H;
    H.Loc = Loc;
    if (!expectIdent(H.CompType) || !expect(TokKind::FatArrow) ||
        !expectIdent(H.MsgName) || !expect(TokKind::LParen))
      return false;
    if (!peek().is(TokKind::RParen)) {
      do {
        std::string Param;
        if (peek().is(TokKind::Underscore)) {
          advance();
          Param = "_";
        } else if (!expectIdent(Param)) {
          return false;
        }
        H.Params.push_back(std::move(Param));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen))
      return false;
    H.Body = parseBlock();
    if (!H.Body)
      return false;
    P.Handlers.push_back(std::move(H));
    return true;
  }

  //===--------------------------------------------------------------------===
  // Commands
  //===--------------------------------------------------------------------===

  CmdPtr parseBlock() {
    SourceLoc Loc = peek().Loc;
    if (!expect(TokKind::LBrace))
      return nullptr;
    std::vector<CmdPtr> Cmds;
    while (!peek().is(TokKind::RBrace)) {
      if (peek().is(TokKind::Eof)) {
        Diags.error(peek().Loc, "unterminated block");
        return nullptr;
      }
      CmdPtr C = parseCmd();
      if (!C)
        return nullptr;
      Cmds.push_back(std::move(C));
    }
    advance(); // '}'
    return std::make_unique<BlockCmd>(std::move(Cmds), Loc);
  }

  CmdPtr parseCmd() {
    switch (peek().Kind) {
    case TokKind::KwSend:
      return parseSend();
    case TokKind::KwLookup:
      return parseLookup();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwNop: {
      SourceLoc Loc = advance().Loc;
      if (!expect(TokKind::Semi))
        return nullptr;
      return std::make_unique<NopCmd>(Loc);
    }
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::Ident:
      if (peek().Text == "broadcast") {
        // The paper originally provided broadcast and removed it: "a
        // single broadcast command could generate an unbounded number of
        // send actions; handling this unbounded behavior proved
        // extraordinarily difficult. We instead use lookup" (§7).
        Diags.error(peek().Loc,
                    "'broadcast' is not a Reflex primitive: it would emit "
                    "an unbounded number of actions. Use 'lookup' to find "
                    "a specific component and send to it");
        return nullptr;
      }
      return parseAssignOrBind();
    default:
      Diags.error(peek().Loc, std::string("expected a command, found ") +
                                  tokKindName(peek().Kind));
      return nullptr;
    }
  }

  CmdPtr parseSend() {
    SourceLoc Loc = advance().Loc; // 'send'
    if (!expect(TokKind::LParen))
      return nullptr;
    ExprPtr Target = parseExpr();
    if (!Target || !expect(TokKind::Comma))
      return nullptr;
    std::string MsgName;
    if (!expectIdent(MsgName) || !expect(TokKind::LParen))
      return nullptr;
    std::vector<ExprPtr> Args;
    if (!parseExprList(Args))
      return nullptr;
    if (!expect(TokKind::RParen) || !expect(TokKind::RParen) ||
        !expect(TokKind::Semi))
      return nullptr;
    return std::make_unique<SendCmd>(std::move(Target), std::move(MsgName),
                                     std::move(Args), Loc);
  }

  /// Parses a comma-separated expression list up to (but not consuming) a
  /// closing paren.
  bool parseExprList(std::vector<ExprPtr> &Out) {
    if (peek().is(TokKind::RParen))
      return true;
    do {
      ExprPtr E = parseExpr();
      if (!E)
        return false;
      Out.push_back(std::move(E));
    } while (accept(TokKind::Comma));
    return true;
  }

  CmdPtr parseLookup() {
    SourceLoc Loc = advance().Loc; // 'lookup'
    std::string CompType;
    if (!expectIdent(CompType) || !expect(TokKind::LParen))
      return nullptr;
    std::vector<LookupConstraint> Constraints;
    if (!peek().is(TokKind::RParen)) {
      do {
        LookupConstraint C;
        if (!expectIdent(C.Field) || !expect(TokKind::EqEq))
          return nullptr;
        C.Expr = parseExpr();
        if (!C.Expr)
          return nullptr;
        Constraints.push_back(std::move(C));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen) || !expect(TokKind::KwAs))
      return nullptr;
    std::string Bind;
    if (!expectIdent(Bind))
      return nullptr;
    CmdPtr Then = parseBlock();
    if (!Then)
      return nullptr;
    CmdPtr Else;
    if (accept(TokKind::KwElse)) {
      Else = parseBlock();
      if (!Else)
        return nullptr;
    } else {
      Else = std::make_unique<NopCmd>(Loc);
    }
    return std::make_unique<LookupCmd>(std::move(Bind), std::move(CompType),
                                       std::move(Constraints), std::move(Then),
                                       std::move(Else), Loc);
  }

  CmdPtr parseIf() {
    SourceLoc Loc = advance().Loc; // 'if'
    if (!expect(TokKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokKind::RParen))
      return nullptr;
    CmdPtr Then = parseBlock();
    if (!Then)
      return nullptr;
    CmdPtr Else;
    if (accept(TokKind::KwElse)) {
      Else = peek().is(TokKind::KwIf) ? parseIf() : parseBlock();
      if (!Else)
        return nullptr;
    } else {
      Else = std::make_unique<NopCmd>(Loc);
    }
    return std::make_unique<IfCmd>(std::move(Cond), std::move(Then),
                                   std::move(Else), Loc);
  }

  CmdPtr parseAssignOrBind() {
    SourceLoc Loc = peek().Loc;
    std::string Name = advance().Text;
    if (accept(TokKind::Equal)) {
      ExprPtr RHS = parseExpr();
      if (!RHS || !expect(TokKind::Semi))
        return nullptr;
      return std::make_unique<AssignCmd>(std::move(Name), std::move(RHS), Loc);
    }
    if (!expect(TokKind::Bind))
      return nullptr;
    if (accept(TokKind::KwSpawn)) {
      std::string CompType;
      if (!expectIdent(CompType) || !expect(TokKind::LParen))
        return nullptr;
      std::vector<ExprPtr> Args;
      if (!parseExprList(Args) || !expect(TokKind::RParen) ||
          !expect(TokKind::Semi))
        return nullptr;
      return std::make_unique<SpawnCmd>(std::move(Name), std::move(CompType),
                                        std::move(Args), Loc);
    }
    if (accept(TokKind::KwCall)) {
      if (!peek().is(TokKind::String)) {
        Diags.error(peek().Loc, "expected native function name string");
        return nullptr;
      }
      std::string Fn = advance().Text;
      if (!expect(TokKind::LParen))
        return nullptr;
      std::vector<ExprPtr> Args;
      if (!parseExprList(Args) || !expect(TokKind::RParen) ||
          !expect(TokKind::Semi))
        return nullptr;
      return std::make_unique<CallCmd>(std::move(Name), std::move(Fn),
                                       std::move(Args), Loc);
    }
    Diags.error(peek().Loc, "expected 'spawn' or 'call' after '<-'");
    return nullptr;
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && peek().is(TokKind::OrOr)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseAnd();
      if (!R)
        return nullptr;
      L = std::make_unique<BinaryExpr>(BinOp::Or, std::move(L), std::move(R),
                                       Loc);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (L && peek().is(TokKind::AndAnd)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseCmp();
      if (!R)
        return nullptr;
      L = std::make_unique<BinaryExpr>(BinOp::And, std::move(L), std::move(R),
                                       Loc);
    }
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    if (!L)
      return nullptr;
    BinOp Op;
    switch (peek().Kind) {
    case TokKind::EqEq:
      Op = BinOp::Eq;
      break;
    case TokKind::NotEq:
      Op = BinOp::Ne;
      break;
    case TokKind::Less:
      Op = BinOp::Lt;
      break;
    case TokKind::LessEq:
      Op = BinOp::Le;
      break;
    case TokKind::Greater:
      Op = BinOp::Gt;
      break;
    case TokKind::GreaterEq:
      Op = BinOp::Ge;
      break;
    default:
      return L;
    }
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseAdd();
    if (!R)
      return nullptr;
    return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseUnary();
    while (L && (peek().is(TokKind::Plus) || peek().is(TokKind::Minus))) {
      BinOp Op = peek().is(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseUnary();
      if (!R)
        return nullptr;
      L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (peek().is(TokKind::Bang)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr E = parseUnary();
      if (!E)
        return nullptr;
      return std::make_unique<UnaryExpr>(std::move(E), Loc);
    }
    return parsePrimary();
  }

  ExprPtr parsePostfix(ExprPtr Base) {
    while (accept(TokKind::Dot)) {
      SourceLoc Loc = peek().Loc;
      std::string Field;
      if (!expectIdent(Field))
        return nullptr;
      Base = std::make_unique<ConfigRefExpr>(std::move(Base),
                                             std::move(Field), Loc);
    }
    return Base;
  }

  ExprPtr parsePrimary() {
    SourceLoc Loc = peek().Loc;
    switch (peek().Kind) {
    case TokKind::Number:
      return std::make_unique<LitExpr>(Value::num(advance().NumVal), Loc);
    case TokKind::String:
      return std::make_unique<LitExpr>(Value::str(advance().Text), Loc);
    case TokKind::KwTrue:
      advance();
      return std::make_unique<LitExpr>(Value::boolean(true), Loc);
    case TokKind::KwFalse:
      advance();
      return std::make_unique<LitExpr>(Value::boolean(false), Loc);
    case TokKind::KwSender:
      advance();
      return parsePostfix(std::make_unique<SenderRefExpr>(Loc));
    case TokKind::Ident:
      return parsePostfix(
          std::make_unique<VarRefExpr>(advance().Text, Loc));
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpr();
      if (!E || !expect(TokKind::RParen))
        return nullptr;
      return E;
    }
    default:
      Diags.error(Loc, std::string("expected an expression, found ") +
                           tokKindName(peek().Kind));
      return nullptr;
    }
  }

  //===--------------------------------------------------------------------===
  // Properties
  //===--------------------------------------------------------------------===

  bool parseProperty(Program &P) {
    SourceLoc Loc = advance().Loc; // 'property'
    Property Prop;
    Prop.Loc = Loc;
    if (!expectIdent(Prop.Name) || !expect(TokKind::Colon))
      return false;

    std::vector<std::string> Vars;
    if (accept(TokKind::KwForall)) {
      do {
        std::string V;
        if (!expectIdent(V))
          return false;
        Vars.push_back(std::move(V));
      } while (accept(TokKind::Comma));
      if (!expect(TokKind::Dot))
        return false;
    }

    if (peek().is(TokKind::KwNoninterference)) {
      NIProperty NI;
      if (!Vars.empty()) {
        if (Vars.size() > 1) {
          Diags.error(Loc,
                      "noninterference takes at most one forall variable");
          return false;
        }
        NI.Param = Vars[0];
      }
      if (!parseNIBody(NI))
        return false;
      Prop.Body = std::move(NI);
    } else if (peek().is(TokKind::Ident) && peek().Text == "atmostonce") {
      // Sugar (paper §6.2 sketches "at most n of some action" as future
      // syntax that "immediately desugars to our existing primitives");
      // the n = 1 case is exactly self-disabling:
      //   atmostonce [A]  ==>  [A] Disables [A]
      advance();
      TraceProperty TP;
      TP.Vars = std::move(Vars);
      TP.Op = TraceOp::Disables;
      if (!parseActionPattern(TP.A))
        return false;
      TP.B = TP.A;
      Prop.Body = std::move(TP);
    } else {
      TraceProperty TP;
      TP.Vars = std::move(Vars);
      if (!parseActionPattern(TP.A))
        return false;
      std::string OpName;
      SourceLoc OpLoc = peek().Loc;
      if (!expectIdent(OpName))
        return false;
      if (!traceOpFromName(OpName, TP.Op)) {
        Diags.error(OpLoc, "unknown trace pattern '" + OpName +
                               "' (expected ImmBefore, ImmAfter, Enables, "
                               "Ensures, or Disables)");
        return false;
      }
      if (!parseActionPattern(TP.B))
        return false;
      Prop.Body = std::move(TP);
    }
    if (!expect(TokKind::Semi))
      return false;
    P.Properties.push_back(std::move(Prop));
    return true;
  }

  static bool traceOpFromName(const std::string &Name, TraceOp &Out) {
    if (Name == "Enables" || Name == "enables")
      Out = TraceOp::Enables;
    else if (Name == "Ensures" || Name == "ensures")
      Out = TraceOp::Ensures;
    else if (Name == "Disables" || Name == "disables")
      Out = TraceOp::Disables;
    else if (Name == "ImmBefore" || Name == "immbefore")
      Out = TraceOp::ImmBefore;
    else if (Name == "ImmAfter" || Name == "immafter")
      Out = TraceOp::ImmAfter;
    else
      return false;
    return true;
  }

  bool parsePatTerm(PatTerm &Out) {
    switch (peek().Kind) {
    case TokKind::Underscore:
      advance();
      Out = PatTerm::wild();
      return true;
    case TokKind::Number:
      Out = PatTerm::lit(Value::num(advance().NumVal));
      return true;
    case TokKind::String:
      Out = PatTerm::lit(Value::str(advance().Text));
      return true;
    case TokKind::KwTrue:
      advance();
      Out = PatTerm::lit(Value::boolean(true));
      return true;
    case TokKind::KwFalse:
      advance();
      Out = PatTerm::lit(Value::boolean(false));
      return true;
    case TokKind::Ident:
      Out = PatTerm::var(advance().Text);
      return true;
    default:
      Diags.error(peek().Loc, "expected a pattern (literal, variable, or _)");
      return false;
    }
  }

  bool parseCompPattern(CompPattern &Out) {
    if (!expectIdent(Out.TypeName))
      return false;
    if (accept(TokKind::LParen)) {
      if (!peek().is(TokKind::RParen)) {
        do {
          CompFieldPattern F;
          if (!expectIdent(F.FieldName) || !expect(TokKind::Equal) ||
              !parsePatTerm(F.Pat))
            return false;
          Out.Fields.push_back(std::move(F));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RParen))
        return false;
    }
    return true;
  }

  bool parseActionPattern(ActionPattern &Out) {
    if (!expect(TokKind::LBracket))
      return false;
    std::string Head;
    SourceLoc Loc = peek().Loc;
    if (!expectIdent(Head))
      return false;
    if (Head == "Send")
      Out.Kind = ActionPattern::Send;
    else if (Head == "Recv")
      Out.Kind = ActionPattern::Recv;
    else if (Head == "Spawn")
      Out.Kind = ActionPattern::Spawn;
    else {
      Diags.error(Loc, "unknown action pattern '" + Head +
                           "' (expected Send, Recv, or Spawn)");
      return false;
    }
    if (!expect(TokKind::LParen) || !parseCompPattern(Out.Comp))
      return false;
    if (Out.Kind != ActionPattern::Spawn) {
      if (!expect(TokKind::Comma) || !expectIdent(Out.Msg.MsgName) ||
          !expect(TokKind::LParen))
        return false;
      if (!peek().is(TokKind::RParen)) {
        do {
          PatTerm T;
          if (!parsePatTerm(T))
            return false;
          Out.Msg.Args.push_back(std::move(T));
        } while (accept(TokKind::Comma));
      }
      if (!expect(TokKind::RParen))
        return false;
    }
    if (!expect(TokKind::RParen) || !expect(TokKind::RBracket))
      return false;
    return true;
  }

  bool parseNIBody(NIProperty &NI) {
    advance(); // 'noninterference'
    if (!expect(TokKind::LBrace))
      return false;
    while (!peek().is(TokKind::RBrace)) {
      if (!expect(TokKind::KwHigh))
        return false;
      std::string What;
      SourceLoc Loc = peek().Loc;
      if (!expectIdent(What) || !expect(TokKind::Colon))
        return false;
      if (What == "components") {
        if (!peek().is(TokKind::Semi)) {
          do {
            CompPattern CP;
            if (!parseCompPattern(CP))
              return false;
            NI.HighComps.push_back(std::move(CP));
          } while (accept(TokKind::Comma));
        }
      } else if (What == "vars") {
        if (!peek().is(TokKind::Semi)) {
          do {
            std::string V;
            if (!expectIdent(V))
              return false;
            NI.HighVars.push_back(std::move(V));
          } while (accept(TokKind::Comma));
        }
      } else {
        Diags.error(Loc, "expected 'components' or 'vars' after 'high'");
        return false;
      }
      if (!expect(TokKind::Semi))
        return false;
    }
    advance(); // '}'
    return true;
  }

  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

ProgramPtr parseProgram(std::string_view Source, DiagnosticEngine &Diags) {
  std::vector<Token> Toks = lexSource(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return Parser(std::move(Toks), Diags).run();
}

} // namespace reflex
