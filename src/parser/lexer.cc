//===- parser/lexer.cc - Reflex lexer ---------------------------*- C++ -*-===//

#include "parser/lexer.h"

#include <cctype>
#include <unordered_map>

namespace reflex {

const char *tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::String:
    return "string";
  case TokKind::Underscore:
    return "'_'";
  case TokKind::KwProgram:
    return "'program'";
  case TokKind::KwComponent:
    return "'component'";
  case TokKind::KwMessage:
    return "'message'";
  case TokKind::KwVar:
    return "'var'";
  case TokKind::KwInit:
    return "'init'";
  case TokKind::KwHandler:
    return "'handler'";
  case TokKind::KwProperty:
    return "'property'";
  case TokKind::KwForall:
    return "'forall'";
  case TokKind::KwNoninterference:
    return "'noninterference'";
  case TokKind::KwHigh:
    return "'high'";
  case TokKind::KwSend:
    return "'send'";
  case TokKind::KwSpawn:
    return "'spawn'";
  case TokKind::KwCall:
    return "'call'";
  case TokKind::KwLookup:
    return "'lookup'";
  case TokKind::KwAs:
    return "'as'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwNop:
    return "'nop'";
  case TokKind::KwSender:
    return "'sender'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Dot:
    return "'.'";
  case TokKind::Equal:
    return "'='";
  case TokKind::Bind:
    return "'<-'";
  case TokKind::FatArrow:
    return "'=>'";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Less:
    return "'<'";
  case TokKind::LessEq:
    return "'<='";
  case TokKind::Greater:
    return "'>'";
  case TokKind::GreaterEq:
    return "'>='";
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "invalid token";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind> Keywords = {
    {"program", TokKind::KwProgram},
    {"component", TokKind::KwComponent},
    {"message", TokKind::KwMessage},
    {"var", TokKind::KwVar},
    {"init", TokKind::KwInit},
    {"handler", TokKind::KwHandler},
    {"property", TokKind::KwProperty},
    {"forall", TokKind::KwForall},
    {"noninterference", TokKind::KwNoninterference},
    {"high", TokKind::KwHigh},
    {"send", TokKind::KwSend},
    {"spawn", TokKind::KwSpawn},
    {"call", TokKind::KwCall},
    {"lookup", TokKind::KwLookup},
    {"as", TokKind::KwAs},
    {"if", TokKind::KwIf},
    {"else", TokKind::KwElse},
    {"nop", TokKind::KwNop},
    {"sender", TokKind::KwSender},
    {"true", TokKind::KwTrue},
    {"false", TokKind::KwFalse},
};

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      Token T = next();
      bool Done = T.is(TokKind::Eof);
      Out.push_back(std::move(T));
      if (Done)
        return Out;
    }
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (Pos < Source.size()) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '#' || (C == '/' && peek(1) == '/')) {
        while (Pos < Source.size() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokKind K, SourceLoc Loc) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    return T;
  }

  Token next() {
    skipTrivia();
    SourceLoc Loc(Line, Col);
    if (Pos >= Source.size())
      return make(TokKind::Eof, Loc);

    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C))) {
      std::string Name(1, C);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        Name += advance();
      auto It = Keywords.find(Name);
      if (It != Keywords.end())
        return make(It->second, Loc);
      Token T = make(TokKind::Ident, Loc);
      T.Text = std::move(Name);
      return T;
    }

    if (C == '_') {
      // `_` alone is the wildcard; `_foo` is an identifier.
      if (!std::isalnum(static_cast<unsigned char>(peek())) && peek() != '_')
        return make(TokKind::Underscore, Loc);
      std::string Name(1, C);
      while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        Name += advance();
      Token T = make(TokKind::Ident, Loc);
      T.Text = std::move(Name);
      return T;
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = C - '0';
      while (std::isdigit(static_cast<unsigned char>(peek())))
        V = V * 10 + (advance() - '0');
      Token T = make(TokKind::Number, Loc);
      T.NumVal = V;
      return T;
    }

    if (C == '"') {
      std::string S;
      while (true) {
        if (Pos >= Source.size() || peek() == '\n') {
          Diags.error(Loc, "unterminated string literal");
          return make(TokKind::Error, Loc);
        }
        char D = advance();
        if (D == '"')
          break;
        if (D == '\\') {
          char E = advance();
          switch (E) {
          case 'n':
            S += '\n';
            break;
          case 't':
            S += '\t';
            break;
          case '\\':
            S += '\\';
            break;
          case '"':
            S += '"';
            break;
          default:
            Diags.error(SourceLoc(Line, Col),
                        std::string("unknown escape '\\") + E + "'");
            break;
          }
          continue;
        }
        S += D;
      }
      Token T = make(TokKind::String, Loc);
      T.Text = std::move(S);
      return T;
    }

    switch (C) {
    case '{':
      return make(TokKind::LBrace, Loc);
    case '}':
      return make(TokKind::RBrace, Loc);
    case '(':
      return make(TokKind::LParen, Loc);
    case ')':
      return make(TokKind::RParen, Loc);
    case '[':
      return make(TokKind::LBracket, Loc);
    case ']':
      return make(TokKind::RBracket, Loc);
    case ',':
      return make(TokKind::Comma, Loc);
    case ';':
      return make(TokKind::Semi, Loc);
    case ':':
      return make(TokKind::Colon, Loc);
    case '.':
      return make(TokKind::Dot, Loc);
    case '+':
      return make(TokKind::Plus, Loc);
    case '-':
      return make(TokKind::Minus, Loc);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Loc);
      }
      if (peek() == '>') {
        advance();
        return make(TokKind::FatArrow, Loc);
      }
      return make(TokKind::Equal, Loc);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Loc);
      }
      return make(TokKind::Bang, Loc);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AndAnd, Loc);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::OrOr, Loc);
      }
      break;
    case '<':
      if (peek() == '-') {
        advance();
        return make(TokKind::Bind, Loc);
      }
      if (peek() == '=') {
        advance();
        return make(TokKind::LessEq, Loc);
      }
      return make(TokKind::Less, Loc);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::GreaterEq, Loc);
      }
      return make(TokKind::Greater, Loc);
    default:
      break;
    }

    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return make(TokKind::Error, Loc);
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::vector<Token> lexSource(std::string_view Source,
                             DiagnosticEngine &Diags) {
  return Lexer(Source, Diags).run();
}

} // namespace reflex
