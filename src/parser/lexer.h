//===- parser/lexer.h - Reflex lexer ----------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the Reflex surface syntax. Comments run from `#`
/// or `//` to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_PARSER_LEXER_H
#define REFLEX_PARSER_LEXER_H

#include "parser/token.h"
#include "support/diagnostics.h"

#include <string_view>
#include <vector>

namespace reflex {

/// Tokenizes \p Source. Lexical errors are reported to \p Diags and yield
/// an Error token; lexing continues so the parser can report more issues.
/// The returned vector always ends with an Eof token.
std::vector<Token> lexSource(std::string_view Source, DiagnosticEngine &Diags);

} // namespace reflex

#endif // REFLEX_PARSER_LEXER_H
