//===- verify/ni.h - Non-interference proofs --------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-interference prover, implementing the paper's Theorem 1
/// sufficient conditions (§5.2): given a component labeling θc (high
/// component patterns, possibly parameterized "for all domains d") and a
/// variable labeling θv (the user-provided high state variables), check,
/// for every handler:
///
///  * NIlo — handlers of messages from low components never send to or
///    spawn high components and never update high variables;
///  * NIhi — handlers of messages from high components behave as a
///    deterministic function of high data: every branch condition, every
///    payload sent to a (possibly) high component, every config of a
///    (possibly) high spawn, and every assignment to a high variable
///    depends only on high symbols (high state variables, the message
///    parameters, the sender's configuration, call results — the paper's
///    nondeterministic contexts, which are inputs by definition — and
///    components found by provably-high-only lookups).
///
/// When a sender's type matches a high pattern only for some
/// configurations (e.g. Tab(domain = d)), the prover case-splits: the
/// high case assumes the pattern's constraints, the low cases assume a
/// negated constraint each (the exact DNF of "not high").
///
/// If a branch condition has low support, the prover falls back to
/// requiring the *entire handler* to have no high-visible effects, which
/// is sound: a handler that never produces high outputs nor touches high
/// state cannot interfere regardless of which path runs.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_NI_H
#define REFLEX_VERIFY_NI_H

#include "ast/program.h"
#include "support/deadline.h"
#include "sym/solver.h"
#include "verify/behabs.h"
#include "verify/certificate.h"

namespace reflex {

struct NIProofOutcome {
  bool Proved = false;
  Certificate Cert;
  std::string Reason;
};

/// Attempts to prove the non-interference property \p Prop. \p Budget is
/// an optional cooperative cancellation token, polled per handler summary
/// (and, via the shared Solver, per query); null means unlimited.
NIProofOutcome proveNonInterference(TermContext &Ctx, Solver &Solv,
                                    const Program &P, const BehAbs &Abs,
                                    const Property &Prop,
                                    Deadline *Budget = nullptr);

} // namespace reflex

#endif // REFLEX_VERIFY_NI_H
