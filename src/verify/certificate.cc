//===- verify/certificate.cc - Proof certificates ---------------*- C++ -*-===//

#include "verify/certificate.h"

#include "support/json.h"

namespace reflex {

const char *justifyName(Justify J) {
  switch (J) {
  case Justify::PathInfeasible:
    return "path-infeasible";
  case Justify::LocalObligation:
    return "local-obligation";
  case Justify::CompOrigin:
    return "component-origin";
  case Justify::InvariantHistory:
    return "invariant-history";
  case Justify::NoCompHistory:
    return "no-comp-history";
  case Justify::GuardPreserved:
    return "guard-preserved";
  case Justify::SyntacticSkip:
    return "syntactic-skip";
  case Justify::NoPriorLocal:
    return "no-prior-local";
  case Justify::FrameBlocked:
    return "frame-blocked";
  }
  return "?";
}

const InvariantRecord *Certificate::findInvariant(int Id) const {
  for (const InvariantRecord &Inv : Invariants)
    if (Inv.Id == Id)
      return &Inv;
  return nullptr;
}

namespace {

void writeStep(JsonWriter &W, const TermContext &Ctx, const ProofStep &S) {
  W.beginObject();
  W.field("where", S.Where);
  W.field("path", static_cast<int64_t>(S.PathIndex));
  if (S.EmitIndex >= 0)
    W.field("emit", static_cast<int64_t>(S.EmitIndex));
  W.field("justify", justifyName(S.Kind));
  if (S.LocalIndex >= 0)
    W.field("local", static_cast<int64_t>(S.LocalIndex));
  if (S.InvariantId >= 0)
    W.field("invariant", static_cast<int64_t>(S.InvariantId));
  if (!S.Binding.empty()) {
    W.key("binding");
    W.beginObject();
    for (const auto &[Var, Term] : S.Binding)
      W.field(Var, Ctx.str(Term));
    W.endObject();
  }
  W.endObject();
}

void writeLits(JsonWriter &W, const TermContext &Ctx,
               const std::vector<Lit> &Lits) {
  W.beginArray();
  for (const Lit &L : Lits)
    W.value((L.Pos ? "" : "!") + Ctx.str(L.Atom));
  W.endArray();
}

} // namespace

namespace {

/// Shared body of toJson and canonical. \p Audit adds the fields that are
/// for human consumption only (program name, NI notes); the canonical
/// form omits them so it contains exactly what certsEqual compares.
std::string renderCertificate(const Certificate &Cert, const TermContext &Ctx,
                              bool Audit) {
  JsonWriter W;
  W.beginObject();
  if (Audit)
    W.field("program", Cert.ProgramName);
  W.field("property", Cert.PropertyName);
  W.field("kind", Cert.Kind);
  // The engine tag and clausal invariant appear only for non-default
  // engines: induction certificates keep their pre-portfolio bytes.
  if (!Cert.Engine.empty())
    W.field("engine", Cert.Engine);
  if (Audit && !Cert.Footprint.empty()) {
    W.key("footprint");
    W.beginArray();
    for (const std::string &Key : Cert.Footprint)
      W.value(Key);
    W.endArray();
  }
  if (Audit && !Cert.SolverLog.empty()) {
    W.key("solver_log");
    W.beginArray();
    for (const std::string &Line : Cert.SolverLog)
      W.value(Line);
    W.endArray();
  }
  W.key("steps");
  W.beginArray();
  for (const ProofStep &S : Cert.Steps)
    writeStep(W, Ctx, S);
  W.endArray();
  W.key("invariants");
  W.beginArray();
  for (const InvariantRecord &Inv : Cert.Invariants) {
    W.beginObject();
    W.field("id", static_cast<int64_t>(Inv.Id));
    W.field("forbids", Inv.Forbids);
    W.key("guard");
    writeLits(W, Ctx, Inv.Guard);
    W.field("action", Inv.Action.str());
    W.key("steps");
    W.beginArray();
    for (const ProofStep &S : Inv.Steps)
      writeStep(W, Ctx, S);
    W.endArray();
    W.endObject();
  }
  W.endArray();
  if (!Cert.Engine.empty()) {
    W.key("clauses");
    W.beginArray();
    for (const std::vector<Lit> &Clause : Cert.InvClauses)
      writeLits(W, Ctx, Clause);
    W.endArray();
  }
  if (!Cert.NICases.empty()) {
    W.key("ni_cases");
    W.beginArray();
    for (const NICaseRecord &C : Cert.NICases) {
      W.beginObject();
      W.field("where", C.Where);
      W.field("path", static_cast<int64_t>(C.PathIndex));
      W.field("sender_high", C.SenderHigh);
      W.key("label_lits");
      writeLits(W, Ctx, C.LabelLits);
      if (Audit && !C.Note.empty())
        W.field("note", C.Note);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  return W.take();
}

} // namespace

std::string Certificate::toJson(const TermContext &Ctx) const {
  return renderCertificate(*this, Ctx, /*Audit=*/true);
}

std::string Certificate::canonical(const TermContext &Ctx) const {
  return renderCertificate(*this, Ctx, /*Audit=*/false);
}

} // namespace reflex
