//===- verify/symstate.cc - Symbolic pattern matching -----------*- C++ -*-===//

#include "verify/symstate.h"

#include "ast/program.h"
#include "trace/pattern.h"

#include <cassert>
#include <sstream>

namespace reflex {

namespace {

/// Tri-state helper: matches one pattern position against a term.
/// Returns false for "structurally impossible"; otherwise appends any
/// required equality to \p Lits and/or extends \p B.
bool matchPos(TermContext &Ctx, TermRef Actual, const PatTerm &Pat,
              SymBinding &B, std::vector<Lit> &Lits) {
  TermRef Target = nullptr;
  switch (Pat.Kind) {
  case PatTerm::Wild:
    return true;
  case PatTerm::Lit:
    Target = Ctx.lit(Pat.LitVal);
    break;
  case PatTerm::Var: {
    auto It = B.find(Pat.VarName);
    if (It == B.end()) {
      B.emplace(Pat.VarName, Actual);
      return true;
    }
    Target = It->second;
    break;
  }
  }
  TermRef EqT = Ctx.eq(Actual, Target);
  if (EqT->Kind == TermKind::BoolLit)
    return EqT->IntVal != 0;
  Lits.emplace_back(EqT, true);
  return true;
}

} // namespace

std::optional<std::vector<Lit>> matchSymAction(TermContext &Ctx,
                                               const SymAction &A,
                                               const ActionPattern &Pat,
                                               SymBinding &B) {
  switch (Pat.Kind) {
  case ActionPattern::Send:
    if (A.Kind != SymAction::Send)
      return std::nullopt;
    break;
  case ActionPattern::Recv:
    if (A.Kind != SymAction::Recv)
      return std::nullopt;
    break;
  case ActionPattern::Spawn:
    if (A.Kind != SymAction::Spawn)
      return std::nullopt;
    break;
  }

  assert(A.Comp && A.Comp->Kind == TermKind::Comp &&
         "emitted action with non-component peer");
  if (Ctx.symbolStr(A.Comp->Str) != Pat.Comp.TypeName)
    return std::nullopt;

  SymBinding Saved = B;
  std::vector<Lit> Lits;

  for (const CompFieldPattern &F : Pat.Comp.Fields) {
    assert(F.FieldIndex >= 0 &&
           static_cast<size_t>(F.FieldIndex) < A.Comp->Ops.size() &&
           "pattern not validated");
    if (!matchPos(Ctx, A.Comp->Ops[F.FieldIndex], F.Pat, B, Lits)) {
      B = std::move(Saved);
      return std::nullopt;
    }
  }

  if (Pat.Kind != ActionPattern::Spawn) {
    if (A.MsgName != Pat.Msg.MsgName ||
        A.Args.size() != Pat.Msg.Args.size()) {
      B = std::move(Saved);
      return std::nullopt;
    }
    for (size_t I = 0; I < Pat.Msg.Args.size(); ++I) {
      if (!matchPos(Ctx, A.Args[I], Pat.Msg.Args[I], B, Lits)) {
        B = std::move(Saved);
        return std::nullopt;
      }
    }
  }
  return Lits;
}

void collectPatVarTypes(const Program &P, const ActionPattern &Pat,
                        std::map<std::string, BaseType> &Out) {
  const ComponentTypeDecl *CT = P.findComponentType(Pat.Comp.TypeName);
  assert(CT && "pattern not validated");
  for (const CompFieldPattern &F : Pat.Comp.Fields)
    if (F.Pat.Kind == PatTerm::Var)
      Out.emplace(F.Pat.VarName, CT->Config[F.FieldIndex].Type);
  if (Pat.Kind == ActionPattern::Spawn)
    return;
  const MessageDecl *MD = P.findMessage(Pat.Msg.MsgName);
  assert(MD && "pattern not validated");
  for (size_t I = 0; I < Pat.Msg.Args.size(); ++I)
    if (Pat.Msg.Args[I].Kind == PatTerm::Var)
      Out.emplace(Pat.Msg.Args[I].VarName, MD->Payload[I]);
}

std::string symActionStr(const TermContext &Ctx, const SymAction &A) {
  std::ostringstream OS;
  auto CompStr = [&]() { return Ctx.str(A.Comp); };
  switch (A.Kind) {
  case SymAction::Select:
    OS << "Select(" << CompStr() << ")";
    break;
  case SymAction::Recv:
  case SymAction::Send:
    OS << (A.Kind == SymAction::Recv ? "Recv(" : "Send(") << CompStr() << ", "
       << A.MsgName << "(";
    for (size_t I = 0; I < A.Args.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Ctx.str(A.Args[I]);
    }
    OS << "))";
    break;
  case SymAction::Spawn:
    OS << "Spawn(" << CompStr() << ")";
    break;
  case SymAction::Call:
    OS << "Call(" << A.CallFn << " -> "
       << (A.CallResult ? Ctx.str(A.CallResult) : "?") << ")";
    break;
  }
  return OS.str();
}

} // namespace reflex
