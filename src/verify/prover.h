//===- verify/prover.h - Automatic trace-property proofs --------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pushbutton prover for trace properties, implementing the tactic
/// strategy of §5.1 as a symbolic verifier:
///
///  1. Induct over BehAbs: a base case for init and one case per
///     (component type, message type) exchange.
///  2. In each case, consider every path through the handler (loop-free,
///     so finitely many) and every emission that can match the property's
///     *trigger* pattern.
///  3. Discharge the obligation locally (an adjacent/earlier/later
///     emission in the same path), or through the component-set axioms
///     (lookup successes witness prior spawns; lookup failures refute
///     them), or by synthesizing a guard invariant from the branch
///     conditions and proving it with a second induction over BehAbs.
///
/// The prover is deliberately incomplete (paper §5.3): it returns Proved
/// with a certificate, or Unknown with the failing obligation — never a
/// claim of falsity (refutation is the bounded model checker's job).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_PROVER_H
#define REFLEX_VERIFY_PROVER_H

#include "ast/program.h"
#include "support/deadline.h"
#include "sym/solver.h"
#include "verify/behabs.h"
#include "verify/certificate.h"
#include "verify/footprint.h"
#include "verify/invariant.h"

#include <optional>

namespace reflex {

/// Prover options mirror the §6.4 optimizations so the ablation bench can
/// toggle them:
///  * SyntacticSkip — skip symbolic evaluation of handlers that a cheap
///    syntactic check shows cannot affect the obligation;
///  * CacheInvariants — reuse auxiliary-invariant proofs across
///    obligations and properties ("saving subproofs at key cut points").
/// (The third optimization, domain-specific term reduction, is toggled on
/// the TermContext.)
struct ProverOptions {
  bool SyntacticSkip = true;
  bool CacheInvariants = true;
  /// Optional cooperative budget, polled at path-enumeration loop heads
  /// (the solver polls it independently via Solver::setDeadline). Owned
  /// by the caller; null means unlimited. Deliberately not part of any
  /// fingerprint: polling never alters a completed derivation.
  Deadline *Budget = nullptr;
  /// Optional out-param: the proof footprint (verify/footprint.h) — every
  /// handler summary the search symbolically processed, transitively
  /// through adopted invariant-cache entries. Recording never takes a
  /// decision, so collection cannot change a derivation; like Budget it
  /// is not part of any fingerprint.
  ProofFootprint *Footprint = nullptr;
};

/// A cross-worker tier for the invariant-proof cache (§6.4, "saving
/// subproofs at key cut points" — shared between the workers of the
/// verification service rather than within one session). Keys are the
/// rendered GuardInvariant::cacheKey strings, which are context-
/// independent; values follow InvariantCache semantics (nullopt = the
/// attempt failed).
///
/// Published records are guard-stripped: guard literals usually reference
/// overlay-allocated eq-nodes that die with the publishing worker's
/// session, while a record's Steps bind only frozen-base terms (enforced
/// at publish time). The adopting worker grafts its own candidate's guard
/// back in — safe because the key renders the guard, so equal keys mean
/// semantically identical guards.
class SharedInvariantCache {
public:
  /// One published attempt: the record (nullopt = the attempt failed) and
  /// the handler footprint its proof consulted, carried so adopters can
  /// fold the entry's dependencies into their own footprint.
  struct Entry {
    std::optional<InvariantRecord> Rec;
    std::set<std::string> Footprint;
  };

  std::optional<Entry> lookup(const std::string &Key) const {
    const Bucket &B = shard(Key);
    std::shared_lock<std::shared_mutex> Lock(B.Mu);
    auto It = B.Map.find(Key);
    if (It == B.Map.end())
      return std::nullopt;
    return It->second;
  }

  void publish(const std::string &Key,
               const std::optional<InvariantRecord> &Rec,
               const std::set<std::string> &Footprint) {
    Bucket &B = shard(Key);
    std::unique_lock<std::shared_mutex> Lock(B.Mu);
    B.Map.emplace(Key, Entry{Rec, Footprint});
  }

private:
  struct Bucket {
    mutable std::shared_mutex Mu;
    std::map<std::string, Entry> Map;
  };
  static constexpr size_t NumShards = 8;
  size_t shardIndex(const std::string &Key) const {
    return std::hash<std::string>()(Key) % NumShards;
  }
  Bucket &shard(const std::string &Key) { return Shards[shardIndex(Key)]; }
  const Bucket &shard(const std::string &Key) const {
    return Shards[shardIndex(Key)];
  }
  std::array<Bucket, NumShards> Shards;
};

/// Cross-property cache of invariant proofs. Entries are std::nullopt for
/// invariants that were attempted and failed. When Shared is set (the
/// parallel service, over a frozen abstraction), misses consult the
/// cross-worker tier and shareable outcomes are published to it.
struct InvariantCache {
  std::map<std::string, std::optional<InvariantRecord>> Map;
  /// Parallel to Map: the handler footprint each attempt consulted
  /// (successes *and* failures — an adopted failure steers the search, so
  /// its dependencies propagate to the adopting proof's footprint).
  std::map<std::string, std::set<std::string>> Footprints;
  SharedInvariantCache *Shared = nullptr;
  uint64_t Hits = 0;
};

/// Outcome of a trace-property proof attempt.
struct TraceProofOutcome {
  bool Proved = false;
  Certificate Cert;
  /// On failure: the obligation the automation could not discharge.
  std::string Reason;
};

/// Attempts to prove \p Prop (which must be a trace property) for the
/// program abstracted by \p Abs. Deterministic: identical inputs yield an
/// identical certificate, which is what the certificate checker exploits.
TraceProofOutcome proveTraceProperty(TermContext &Ctx, Solver &Solv,
                                     const Program &P, const BehAbs &Abs,
                                     const Property &Prop,
                                     const ProverOptions &Opts,
                                     InvariantCache &Cache);

} // namespace reflex

#endif // REFLEX_VERIFY_PROVER_H
