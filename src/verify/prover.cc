//===- verify/prover.cc - Automatic trace-property proofs -------*- C++ -*-===//

#include "verify/prover.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace reflex {

namespace {

std::string whereOf(const HandlerSummary &S) {
  return S.CompType + "=>" + S.MsgName;
}

/// Can the body of \p S possibly emit an action matching \p Pat? Purely
/// syntactic; used by the SyntacticSkip optimization. Conservative: "true"
/// means "maybe".
bool summaryMayEmit(const Program &P, const HandlerSummary &S,
                    const ActionPattern &Pat) {
  switch (Pat.Kind) {
  case ActionPattern::Recv:
    return S.CompType == Pat.Comp.TypeName && S.MsgName == Pat.Msg.MsgName;
  case ActionPattern::Send: {
    if (S.IsDefault)
      return false;
    const Handler *H = P.findHandler(S.CompType, S.MsgName);
    assert(H && "summary without handler");
    return cmdSendsMessage(*H->Body, Pat.Msg.MsgName);
  }
  case ActionPattern::Spawn: {
    if (S.IsDefault)
      return false;
    const Handler *H = P.findHandler(S.CompType, S.MsgName);
    assert(H && "summary without handler");
    return cmdSpawnsType(*H->Body, Pat.Comp.TypeName);
  }
  }
  return true;
}

/// Can the body of \p S assign any of \p Vars?
bool summaryMayAssign(const Program &P, const HandlerSummary &S,
                      const std::set<std::string> &Vars) {
  if (S.IsDefault || Vars.empty())
    return false;
  const Handler *H = P.findHandler(S.CompType, S.MsgName);
  assert(H && "summary without handler");
  std::set<std::string> Assigned;
  collectAssignedVars(*H->Body, Assigned);
  for (const std::string &V : Vars)
    if (Assigned.count(V))
      return true;
  return false;
}

class Engine {
public:
  Engine(TermContext &Ctx, Solver &Solv, const Program &P, const BehAbs &Abs,
         const TraceProperty &TP, const ProverOptions &Opts,
         InvariantCache &Cache, Certificate &Cert)
      : Ctx(Ctx), Solv(Solv), P(P), Abs(Abs), TP(TP), Opts(Opts),
        Cache(Cache), Cert(Cert) {
    collectPatVarTypes(P, TP.A, VarTypes);
    collectPatVarTypes(P, TP.B, VarTypes);
    FPFrames.emplace_back(); // the property-level footprint frame
  }

  bool run(std::string &WhyOut) {
    // Base case: the init trace.
    for (size_t I = 0; I < Abs.Init.Paths.size(); ++I)
      if (!processPath("init", static_cast<int>(I), Abs.Init.Paths[I],
                       /*IsInit=*/true))
        return fail(WhyOut);

    // Inductive cases: one per (component type, message type).
    for (const HandlerSummary &S : Abs.Handlers) {
      if (Opts.SyntacticSkip && !summaryMayEmit(P, S, TP.trigger())) {
        ProofStep Step;
        Step.Where = whereOf(S);
        Step.Kind = Justify::SyntacticSkip;
        Cert.Steps.push_back(std::move(Step));
        continue;
      }
      // Symbolically processed: this case's outcome reads the handler's
      // summary, so the handler joins the footprint — path-granularly:
      // the obligation scan observes every path's *emits* (to decide
      // entered/not-entered) but reads a path's condition, updates, and
      // facts only where some emit structurally matched the trigger.
      // (Skipped summaries are deliberately absent — the skip decision
      // factors through the interface fingerprint, see
      // verify/footprint.h.)
      TopEnteredSet = &TopEntered[whereOf(S)];
      for (size_t I = 0; I < S.Paths.size(); ++I)
        if (!processPath(whereOf(S), static_cast<int>(I), S.Paths[I],
                         /*IsInit=*/false)) {
          TopEnteredSet = nullptr;
          return fail(WhyOut);
        }
      TopEnteredSet = nullptr;
    }
    return true;
  }

  /// The property-level footprint: every handler consulted by run(),
  /// including inside failed invariant attempts and transitively through
  /// adopted cache entries. Valid after run() returns (either way — an
  /// Unknown's footprint covers the consulted prefix, which is all a
  /// re-run would consult again). Handlers walked by an invariant
  /// induction (directly or through an adopted cache entry) are AllPaths;
  /// handlers only scanned by the property's own obligation pass carry
  /// the entered path-id set.
  void exportFootprint(ProofFootprint &FP) {
    FP.Collected = FPComplete;
    FP.AllHandlers = false;
    FP.Handlers.clear();
    for (const std::string &Key : FPFrames.front())
      FP.Handlers[Key].AllPaths = true;
    for (const auto &[Key, Entered] : TopEntered) {
      HandlerFootprint &HF = FP.Handlers[Key];
      if (HF.AllPaths)
        continue; // an invariant induction already claimed every path
      HF.Entered.insert(Entered.begin(), Entered.end());
    }
  }

private:
  bool fail(std::string &WhyOut) {
    WhyOut = Why;
    return false;
  }

  /// Budget poll at a loop head. Expiry fails the current obligation with
  /// a deterministic reason; most detections actually happen inside the
  /// solver (which answers Maybe once expired), this is a backstop for
  /// paths that take no queries.
  bool budgetExpired() {
    if (Opts.Budget && Opts.Budget->expired()) {
      Why = "verification budget exhausted";
      return true;
    }
    return false;
  }

  /// Checks every potential trigger occurrence on one path. The path
  /// condition is asserted once for the whole obligation family; each
  /// trigger occurrence adds its match condition in a nested scope, so
  /// the solver re-derives only the emission-specific consequences.
  bool processPath(const std::string &Where, int PathIdx, const SymPath &Path,
                   bool IsInit) {
    if (budgetExpired())
      return false;
    const ActionPattern &Trigger = TP.trigger();
    Solver::Scope PathScope(Solv, Path.Cond);
    for (size_t K = 0; K < Path.Emits.size(); ++K) {
      SymBinding Sigma;
      auto MC = matchSymAction(Ctx, Path.Emits[K], Trigger, Sigma);
      if (!MC)
        continue;
      // A structural trigger match makes the path *entered*: from here on
      // the proof reads the path's condition and content, not just its
      // emits. Recorded before the feasibility query on purpose — the
      // query's answer already depends on Path.Cond.
      if (TopEnteredSet)
        TopEnteredSet->insert(Path.PathId);
      if (!Solv.maybeSatUnder(*MC))
        continue; // trigger occurrence cannot arise on this path
      // synthesizeGuard and preStateGuard still want the flat literal
      // vector; the solver itself works from the asserted stack.
      std::vector<Lit> Assume = Path.Cond;
      Assume.insert(Assume.end(), MC->begin(), MC->end());
      Solver::Scope EmitScope(Solv, *MC);
      if (!discharge(Where, PathIdx, Path, K, Assume, Sigma, IsInit))
        return false;
    }
    return true;
  }

  /// Attempts to match emission \p J against \p Pat under the (fixed)
  /// binding \p Sigma; returns the match condition if structurally
  /// possible.
  std::optional<std::vector<Lit>> matchUnder(const SymAction &A,
                                             const ActionPattern &Pat,
                                             const SymBinding &Sigma) {
    SymBinding B = Sigma;
    return matchSymAction(Ctx, A, Pat, B);
  }

  bool discharge(const std::string &Where, int PathIdx, const SymPath &Path,
                 size_t K, const std::vector<Lit> &Assume,
                 const SymBinding &Sigma, bool IsInit) {
    ProofStep Step;
    Step.Where = Where;
    Step.PathIndex = PathIdx;
    Step.EmitIndex = static_cast<int>(K);
    Step.Binding = Sigma;
    const ActionPattern &Obl = TP.obligation();

    switch (TP.Op) {
    case TraceOp::ImmBefore: {
      // The action immediately before the trigger must match A.
      if (K == 0)
        return obligationFailed(Step, "trigger is the first trace action; "
                                      "nothing precedes it");
      auto MC = matchUnder(Path.Emits[K - 1], Obl, Sigma);
      if (MC && Solv.entailsAllUnder(*MC)) {
        Step.Kind = Justify::LocalObligation;
        Step.LocalIndex = static_cast<int>(K - 1);
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      return obligationFailed(Step, "immediately-preceding action does not "
                                    "provably match " +
                                        Obl.str());
    }

    case TraceOp::ImmAfter: {
      if (K + 1 >= Path.Emits.size())
        return obligationFailed(
            Step, "trigger is the handler's last action; the next trace "
                  "action is a future Select, which cannot match " +
                      Obl.str());
      auto MC = matchUnder(Path.Emits[K + 1], Obl, Sigma);
      if (MC && Solv.entailsAllUnder(*MC)) {
        Step.Kind = Justify::LocalObligation;
        Step.LocalIndex = static_cast<int>(K + 1);
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      return obligationFailed(Step, "immediately-following action does not "
                                    "provably match " +
                                        Obl.str());
    }

    case TraceOp::Ensures: {
      for (size_t J = K + 1; J < Path.Emits.size(); ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(J);
          Cert.Steps.push_back(std::move(Step));
          return true;
        }
      }
      return obligationFailed(Step,
                              "no later action in the same handler provably "
                              "matches " +
                                  Obl.str() +
                                  " (the automation only discharges Ensures "
                                  "within one exchange)");
    }

    case TraceOp::Enables: {
      // (1) Local: an earlier emission in the same path.
      for (size_t J = 0; J < K; ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(J);
          Cert.Steps.push_back(std::move(Step));
          return true;
        }
      }
      // (2) Component origin: a component found by lookup was spawned at
      // some strictly earlier point, and that Spawn is a trace action.
      if (Obl.Kind == ActionPattern::Spawn) {
        for (size_t F = 0; F < Path.FoundComps.size(); ++F) {
          SymAction Pseudo;
          Pseudo.Kind = SymAction::Spawn;
          Pseudo.Comp = Path.FoundComps[F];
          auto MC = matchUnder(Pseudo, Obl, Sigma);
          if (MC && Solv.entailsAllUnder(*MC)) {
            Step.Kind = Justify::CompOrigin;
            Step.LocalIndex = static_cast<int>(F);
            Cert.Steps.push_back(std::move(Step));
            return true;
          }
        }
      }
      if (IsInit)
        return obligationFailed(Step, "no earlier init action provably "
                                      "matches " +
                                          Obl.str());
      // (3) Guard invariant: the branch conditions force the history.
      GuardInvariant Inv = synthesizeGuard(Ctx, Assume, Sigma, Obl, VarTypes,
                                           /*Forbids=*/false);
      if (std::optional<int> Id = proveInvariantWithFallback(Inv)) {
        Step.Kind = Justify::InvariantHistory;
        Step.InvariantId = *Id;
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      return obligationFailed(Step,
                              "could not establish history invariant: " +
                                  guardStr(Inv) + " => exists " + Obl.str());
    }

    case TraceOp::Disables: {
      // (1) No earlier emission in the same path may match.
      for (size_t J = 0; J < K; ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (!MC)
          continue;
        if (Solv.maybeSatUnder(*MC))
          return obligationFailed(
              Step, "an earlier action in the same handler may match the "
                    "disabling pattern " +
                        Obl.str());
      }
      if (IsInit) {
        Step.Kind = Justify::NoPriorLocal;
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      // (2) Failed-lookup fact: a prior Spawn matching A would have left a
      // matching component alive, contradicting the lookup failure.
      if (Obl.Kind == ActionPattern::Spawn &&
          noCompFactCovers(Path, Sigma, Obl)) {
        Step.Kind = Justify::NoCompHistory;
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      // (3) Guard invariant: the branch conditions refute the history.
      GuardInvariant Inv = synthesizeGuard(Ctx, Assume, Sigma, Obl, VarTypes,
                                           /*Forbids=*/true);
      if (std::optional<int> Id = proveInvariantWithFallback(Inv)) {
        Step.Kind = Justify::InvariantHistory;
        Step.InvariantId = *Id;
        Cert.Steps.push_back(std::move(Step));
        return true;
      }
      return obligationFailed(Step,
                              "could not establish exclusion invariant: " +
                                  guardStr(Inv) + " => never " + Obl.str());
    }
    }
    return false;
  }

  /// Does some failed-lookup fact on \p Path refute any prior spawn
  /// matching \p Obl under \p Sigma? True when every constraint of the
  /// fact is provably forced by the pattern: any component matching the
  /// pattern would satisfy the failed lookup's predicate, so it cannot
  /// exist — hence it was never spawned (components are immortal and
  /// configs immutable). Queries run under the asserted obligation stack.
  bool noCompFactCovers(const SymPath &Path, const SymBinding &Sigma,
                        const ActionPattern &Obl) {
    for (const NoCompFact &Fact : Path.NoComp) {
      if (Fact.TypeName != Obl.Comp.TypeName)
        continue;
      bool Covered = true;
      for (const auto &[Index, Required] : Fact.Constraints) {
        const CompFieldPattern *FP = nullptr;
        for (const CompFieldPattern &F : Obl.Comp.Fields)
          if (F.FieldIndex == Index)
            FP = &F;
        if (!FP) {
          Covered = false;
          break;
        }
        TermRef PatSide = nullptr;
        switch (FP->Pat.Kind) {
        case PatTerm::Lit:
          PatSide = Ctx.lit(FP->Pat.LitVal);
          break;
        case PatTerm::Var: {
          auto It = Sigma.find(FP->Pat.VarName);
          if (It != Sigma.end())
            PatSide = It->second;
          break;
        }
        case PatTerm::Wild:
          break;
        }
        if (!PatSide ||
            !Solv.entailsUnder(Lit(Ctx.eq(PatSide, Required), true))) {
          Covered = false;
          break;
        }
      }
      if (Covered)
        return true;
    }
    return false;
  }

  std::string guardStr(const GuardInvariant &Inv) {
    std::ostringstream OS;
    OS << "{";
    for (size_t I = 0; I < Inv.Guard.size(); ++I) {
      if (I != 0)
        OS << " && ";
      OS << (Inv.Guard[I].Pos ? "" : "!") << Ctx.str(Inv.Guard[I].Atom);
    }
    OS << "}";
    return OS.str();
  }

  bool obligationFailed(const ProofStep &Step, const std::string &Detail) {
    std::ostringstream OS;
    OS << "unproved obligation at " << Step.Where << " path "
       << Step.PathIndex << " emit " << Step.EmitIndex << ": " << Detail;
    Why = OS.str();
    return false;
  }

  //===--------------------------------------------------------------------===
  // The second induction: proving guard invariants
  //===--------------------------------------------------------------------===

  /// Tries the fully synthesized guard first, then each single-literal
  /// weakening. The full guard carries the most information (needed when
  /// several conditions jointly pin the history, like the SSH
  /// authentication pair), but it can also drag in literals that force an
  /// unnecessarily deep induction; a single preserved literal (e.g.
  /// "stage 0 done") is often the natural invariant.
  std::optional<int> proveInvariantWithFallback(const GuardInvariant &Inv) {
    if (std::optional<int> Id = proveInvariant(Inv))
      return Id;
    if (Inv.Guard.size() <= 1)
      return std::nullopt;
    for (const Lit &L : Inv.Guard) {
      GuardInvariant Single = Inv;
      Single.Guard = {L};
      if (std::optional<int> Id = proveInvariant(Single))
        return Id;
    }
    return std::nullopt;
  }

  std::optional<int> proveInvariant(const GuardInvariant &Inv,
                                    unsigned Depth = 0) {
    std::string Key = Inv.cacheKey(Ctx);

    // Already used by this certificate? Its footprint was recorded when
    // the attempt completed; fold it into the current frame so cached
    // sub-attempts still propagate their dependencies upward.
    auto LocalIt = LocalInvariants.find(Key);
    if (LocalIt != LocalInvariants.end()) {
      mergeLocalFootprint(Key);
      return LocalIt->second;
    }

    // Depth cap and cycle guard for nested strengthening (the paper's
    // automation performs one nested induction; we allow a little more).
    if (Depth > 3 || InFlight.count(Key))
      return std::nullopt;

    // Cross-property cache.
    if (Opts.CacheInvariants) {
      auto It = Cache.Map.find(Key);
      if (It != Cache.Map.end()) {
        ++Cache.Hits;
        // Transitive footprint: the adopted attempt consulted handlers
        // this proof never touched itself; they become this proof's
        // dependencies too (for failures as much as successes — an
        // adopted failure steers the search).
        auto FpIt = Cache.Footprints.find(Key);
        if (FpIt != Cache.Footprints.end()) {
          FPFrames.back().insert(FpIt->second.begin(), FpIt->second.end());
          LocalFootprints[Key] = FpIt->second;
        } else {
          FPComplete = false; // entry predates footprint recording
        }
        return adoptRecord(Key, It->second);
      }
      // Cross-worker tier. Entries are published guard-stripped (see
      // SharedInvariantCache); graft this candidate's own guard back in —
      // the key's rendering pins the guard, so equal keys mean equal
      // guards.
      if (Cache.Shared) {
        if (std::optional<SharedInvariantCache::Entry> SharedHit =
                Cache.Shared->lookup(Key)) {
          std::optional<InvariantRecord> Entry = std::move(SharedHit->Rec);
          if (Entry) {
            Entry->Guard = Inv.Guard;
            Entry->Action = Inv.Action;
            Entry->VarTypes = Inv.VarTypes;
          }
          ++Cache.Hits;
          Cache.Map.emplace(Key, Entry);
          Cache.Footprints.emplace(Key, SharedHit->Footprint);
          FPFrames.back().insert(SharedHit->Footprint.begin(),
                                 SharedHit->Footprint.end());
          LocalFootprints[Key] = std::move(SharedHit->Footprint);
          return adoptRecord(Key, Entry);
        }
      }
    }

    InvariantRecord Rec;
    Rec.Forbids = Inv.Forbids;
    Rec.Guard = Inv.Guard;
    Rec.Action = Inv.Action;
    Rec.VarTypes = Inv.VarTypes;
    // The attempt is transactional: a failed proof may have adopted
    // sub-invariants into the certificate along the way; roll those back
    // so certificates only record what the final proof uses (and so the
    // checker's cold-cache re-derivation numbers records identically).
    // The attempt's *footprint* is not rolled back: consulted is
    // consulted, and a re-run would consult the same handlers again.
    size_t CertSnapshot = Cert.Invariants.size();
    InFlight.insert(Key);
    FPFrames.emplace_back();
    bool Ok = proveInvariantSteps(Inv, Rec, Depth);
    std::set<std::string> Mine = std::move(FPFrames.back());
    FPFrames.pop_back();
    FPFrames.back().insert(Mine.begin(), Mine.end());
    LocalFootprints[Key] = Mine;
    InFlight.erase(Key);
    if (!Ok && Cert.Invariants.size() > CertSnapshot) {
      Cert.Invariants.resize(CertSnapshot);
      for (auto It = LocalInvariants.begin(); It != LocalInvariants.end();) {
        if (It->second && *It->second > static_cast<int>(CertSnapshot))
          It = LocalInvariants.erase(It);
        else
          ++It;
      }
    }
    std::optional<InvariantRecord> Entry =
        Ok ? std::optional<InvariantRecord>(Rec) : std::nullopt;
    // Records whose proof references nested sub-invariants carry ids
    // local to *this* certificate; caching them across certificates would
    // dangle. Only self-contained records (and failures) are shared.
    bool SelfContained = true;
    for (const ProofStep &S : Rec.Steps)
      SelfContained &= S.InvariantId < 0;
    if (Opts.CacheInvariants && (!Ok || SelfContained)) {
      Cache.Map.emplace(Key, Entry);
      Cache.Footprints.emplace(Key, Mine);
      // Cross-worker tier. Three extra gates beyond the private cache:
      //  * never publish under an expired budget — a budget-starved
      //    failure is this worker's accident, not a fact about the
      //    program, and adopting it elsewhere would break determinism;
      //  * successful records must bind only frozen-base terms, or their
      //    TermRefs would dangle once this worker's overlay dies;
      //  * guards are stripped (adopters graft their own; the key pins
      //    the guard's meaning);
      //  * failures are published only from top-level attempts — a
      //    depth-capped nested failure must not shadow another worker's
      //    full-strength attempt.
      if (Cache.Shared && (Ok || Depth == 0) &&
          !(Opts.Budget && Opts.Budget->expiredNow())) {
        bool BasePure = true;
        if (Ok)
          for (const ProofStep &S : Rec.Steps)
            for (const auto &[Var, T] : S.Binding)
              BasePure &= Ctx.inFrozenBase(T);
        if (BasePure) {
          std::optional<InvariantRecord> Pub = Entry;
          if (Pub)
            Pub->Guard.clear();
          Cache.Shared->publish(Key, Pub, Mine);
        }
      }
    }
    return adoptRecord(Key, Entry);
  }

  /// The strengthened pre-state guard for a path that breaks invariant
  /// \p Inv: the path's own guard-safe branch conditions plus the
  /// invariant-guard literals this path does not disturb. Proving the
  /// invariant with *this* guard at the pre-state either re-establishes
  /// the history fact or shows the combination unreachable (e.g. "stage 1
  /// done but stage 0 not started" is vacuously impossible).
  std::vector<Lit> preStateGuard(const SymPath &Path,
                                 const GuardInvariant &Inv) {
    std::unordered_map<TermRef, TermRef> Subst;
    for (const auto &[Var, Term] : Path.Updates) {
      const StateVarDecl *V = P.findStateVar(Var);
      assert(V && Term);
      Subst.emplace(Ctx.stateSym(Var, V->Type), Term);
    }
    std::vector<Lit> Out;
    for (const Lit &L : Path.Cond)
      if (isGuardTerm(L.Atom) && L.Atom->Kind != TermKind::BoolLit)
        Out.push_back(L);
    for (const Lit &G : Inv.Guard)
      if (Ctx.substitute(G.Atom, Subst) == G.Atom)
        Out.push_back(G);
    // Order by *render*, not term Id: hash-consed Ids record first
    // allocation, so an edit elsewhere in the program can reorder Ids of
    // terms this proof shares with the edited code — which would reorder
    // the guard and break byte-identical footprint reuse. Renders are a
    // function of the terms alone.
    sortLitsByRender(Ctx, Out);
    Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    return Out;
  }

  /// Copies a (possibly cached) record into this certificate under a fresh
  /// local id. Records failures as nullopt so repeated attempts are free.
  std::optional<int> adoptRecord(const std::string &Key,
                                 const std::optional<InvariantRecord> &Rec) {
    if (!Rec) {
      LocalInvariants.emplace(Key, std::nullopt);
      return std::nullopt;
    }
    InvariantRecord Copy = *Rec;
    Copy.Id = static_cast<int>(Cert.Invariants.size()) + 1;
    Cert.Invariants.push_back(std::move(Copy));
    int Id = Cert.Invariants.back().Id;
    LocalInvariants.emplace(Key, Id);
    return Id;
  }

  bool proveInvariantSteps(const GuardInvariant &Inv, InvariantRecord &Rec,
                           unsigned Depth) {
    if (Opts.Budget && Opts.Budget->expired())
      return false;
    // Invariant proving is re-entrant (discharge calls it while an
    // obligation's scopes are open, and it recurses through nested
    // strengthening); rewind to the base context so each path below
    // asserts exactly its own hypothesis.
    Solver::Suspended Clean(Solv);
    SymBinding PatB = patSymBinding(Ctx, Inv);
    std::set<std::string> GuardVars;
    collectGuardVars(Inv.Guard, Ctx, GuardVars);

    // Base case: init.
    for (size_t I = 0; I < Abs.Init.Paths.size(); ++I) {
      const SymPath &Path = Abs.Init.Paths[I];
      Solver::Scope PathScope(
          Solv, assumeWithGuard(Path, Inv, /*IsInit=*/true));
      ProofStep Step;
      Step.Where = "init";
      Step.PathIndex = static_cast<int>(I);
      if (Solv.check() == SatResult::Unsat) {
        Step.Kind = Justify::PathInfeasible;
        Rec.Steps.push_back(std::move(Step));
        continue;
      }
      if (Inv.Forbids) {
        if (!refuteAllEmissions(Path, PatB, Inv.Action))
          return false;
        Step.Kind = Justify::NoPriorLocal;
        Rec.Steps.push_back(std::move(Step));
        continue;
      }
      bool Found = false;
      for (size_t J = 0; J < Path.Emits.size() && !Found; ++J) {
        SymBinding B = PatB;
        auto MC = matchSymAction(Ctx, Path.Emits[J], Inv.Action, B);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(J);
          Found = true;
        }
      }
      if (!Found)
        return false;
      Rec.Steps.push_back(std::move(Step));
    }

    // Inductive step: every exchange preserves the invariant.
    for (const HandlerSummary &S : Abs.Handlers) {
      if (Opts.SyntacticSkip && !summaryMayEmit(P, S, Inv.Action) &&
          !summaryMayAssign(P, S, GuardVars)) {
        ProofStep Step;
        Step.Where = whereOf(S);
        Step.Kind = Justify::SyntacticSkip;
        Rec.Steps.push_back(std::move(Step));
        continue;
      }
      noteHandler(whereOf(S));
      for (size_t I = 0; I < S.Paths.size(); ++I) {
        const SymPath &Path = S.Paths[I];
        Solver::Scope PathScope(
            Solv, assumeWithGuard(Path, Inv, /*IsInit=*/false));
        ProofStep Step;
        Step.Where = whereOf(S);
        Step.PathIndex = static_cast<int>(I);
        if (Solv.check() == SatResult::Unsat) {
          Step.Kind = Justify::PathInfeasible;
          Rec.Steps.push_back(std::move(Step));
          continue;
        }
        if (Inv.Forbids) {
          // No emission of this path may match, and the prefix trace must
          // be clean: either the guard already held (inductive
          // hypothesis), or the path's own pre-state branch conditions
          // re-establish the exclusion through a deeper induction.
          if (!refuteAllEmissions(Path, PatB, Inv.Action))
            return false;
          if (Solv.entailsAllUnder(Inv.Guard)) {
            Step.Kind = Justify::GuardPreserved;
            Rec.Steps.push_back(std::move(Step));
            continue;
          }
          GuardInvariant Sub;
          Sub.Forbids = true;
          Sub.Guard = preStateGuard(Path, Inv);
          Sub.Action = Inv.Action;
          Sub.VarTypes = Inv.VarTypes;
          if (std::optional<int> Id = proveInvariant(Sub, Depth + 1)) {
            Step.Kind = Justify::InvariantHistory;
            Step.InvariantId = *Id;
            Rec.Steps.push_back(std::move(Step));
            continue;
          }
          return false;
        }
        // Require-history: either this path emits the action, or the guard
        // already held (inductive hypothesis).
        bool Done = false;
        for (size_t J = 0; J < Path.Emits.size() && !Done; ++J) {
          SymBinding B = PatB;
          auto MC = matchSymAction(Ctx, Path.Emits[J], Inv.Action, B);
          if (MC && Solv.entailsAllUnder(*MC)) {
            Step.Kind = Justify::LocalObligation;
            Step.LocalIndex = static_cast<int>(J);
            Done = true;
          }
        }
        if (!Done && Solv.entailsAllUnder(Inv.Guard)) {
          Step.Kind = Justify::GuardPreserved;
          Done = true;
        }
        if (!Done) {
          // Strengthen: the pre-state's branch conditions may imply the
          // history fact on their own.
          GuardInvariant Sub;
          Sub.Forbids = false;
          Sub.Guard = preStateGuard(Path, Inv);
          Sub.Action = Inv.Action;
          Sub.VarTypes = Inv.VarTypes;
          if (std::optional<int> Id = proveInvariant(Sub, Depth + 1)) {
            Step.Kind = Justify::InvariantHistory;
            Step.InvariantId = *Id;
            Done = true;
          }
        }
        if (!Done)
          return false;
        Rec.Steps.push_back(std::move(Step));
      }
    }
    return true;
  }

  /// Path condition plus the guard evaluated over the path's *post* state
  /// (for init paths, Updates carries every state variable's final term,
  /// so the same substitution covers the base case).
  std::vector<Lit> assumeWithGuard(const SymPath &Path,
                                   const GuardInvariant &Inv,
                                   bool /*IsInit*/) {
    std::unordered_map<TermRef, TermRef> Subst;
    for (const auto &[Var, Term] : Path.Updates) {
      const StateVarDecl *V = P.findStateVar(Var);
      assert(V && Term);
      Subst.emplace(Ctx.stateSym(Var, V->Type), Term);
    }
    std::vector<Lit> Assume = Path.Cond;
    for (const Lit &G : Inv.Guard)
      Assume.emplace_back(Ctx.substitute(G.Atom, Subst), G.Pos);
    return Assume;
  }

  /// For Forbids invariants: no emission of \p Path may match the action
  /// under the asserted path hypothesis.
  bool refuteAllEmissions(const SymPath &Path, const SymBinding &PatB,
                          const ActionPattern &Act) {
    for (const SymAction &E : Path.Emits) {
      SymBinding B = PatB;
      auto MC = matchSymAction(Ctx, E, Act, B);
      if (!MC)
        continue;
      if (Solv.maybeSatUnder(*MC))
        return false;
    }
    return true;
  }

  /// Footprint recording (verify/footprint.h): the current frame is the
  /// innermost in-flight proof (the property itself, or a nested
  /// invariant attempt). Frames merge into their parent on pop, so every
  /// consulted handler ultimately reaches the property-level frame.
  void noteHandler(const std::string &Where) { FPFrames.back().insert(Where); }

  void mergeLocalFootprint(const std::string &Key) {
    auto It = LocalFootprints.find(Key);
    if (It != LocalFootprints.end())
      FPFrames.back().insert(It->second.begin(), It->second.end());
  }

  TermContext &Ctx;
  Solver &Solv;
  const Program &P;
  const BehAbs &Abs;
  const TraceProperty &TP;
  ProverOptions Opts;
  InvariantCache &Cache;
  Certificate &Cert;
  std::string Why;
  std::map<std::string, BaseType> VarTypes;
  std::map<std::string, std::optional<int>> LocalInvariants;
  std::set<std::string> InFlight;
  /// Footprint frame stack: [0] is the property-level frame; one frame is
  /// pushed per in-flight invariant attempt. Frame entries carry AllPaths
  /// semantics (invariant inductions walk every path of a processed
  /// handler); the top-level obligation scan records path-granular entry
  /// in TopEntered instead.
  std::vector<std::set<std::string>> FPFrames;
  /// Handler key -> path ids the top-level obligation scan entered. A key
  /// with an empty set was processed (emits observed) but no path's emits
  /// structurally matched the trigger.
  std::map<std::string, std::set<std::string>> TopEntered;
  /// Points into TopEntered for the summary run() is currently scanning;
  /// null during init paths and invariant inductions.
  std::set<std::string> *TopEnteredSet = nullptr;
  /// Key -> footprint of the completed attempt (or adopted entry), for
  /// LocalInvariants hits.
  std::map<std::string, std::set<std::string>> LocalFootprints;
  /// Cleared when an adopted private-cache entry carries no footprint
  /// (cannot happen for entries recorded by this engine; defensive).
  bool FPComplete = true;
};

} // namespace

TraceProofOutcome proveTraceProperty(TermContext &Ctx, Solver &Solv,
                                     const Program &P, const BehAbs &Abs,
                                     const Property &Prop,
                                     const ProverOptions &Opts,
                                     InvariantCache &Cache) {
  assert(Prop.isTrace() && "not a trace property");
  TraceProofOutcome Out;
  Out.Cert.ProgramName = P.Name;
  Out.Cert.PropertyName = Prop.Name;
  Out.Cert.Kind = traceOpName(Prop.traceProp().Op);

  if (Abs.incomplete()) {
    Out.Reason = "behavioral abstraction incomplete (symbolic execution "
                 "limits exceeded)";
    // Which handler blew the limits is a function of every handler body;
    // only an all-handlers footprint is sound for this outcome.
    if (Opts.Footprint) {
      Opts.Footprint->Collected = true;
      Opts.Footprint->AllHandlers = true;
    }
    return Out;
  }

  Engine E(Ctx, Solv, P, Abs, Prop.traceProp(), Opts, Cache, Out.Cert);
  Out.Proved = E.run(Out.Reason);
  if (Opts.Footprint)
    E.exportFootprint(*Opts.Footprint);
  return Out;
}

} // namespace reflex
