//===- verify/verifier.h - Verification facade ------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-stop verification entry point: builds the behavioral
/// abstraction once, then proves each property of the program fully
/// automatically (trace properties via verify/prover.h, non-interference
/// via verify/ni.h), re-checks every certificate with the independent
/// checker, and optionally runs the bounded model checker on properties
/// the prover could not establish, to distinguish "false" from "beyond
/// the automation" (paper §6.3).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_VERIFIER_H
#define REFLEX_VERIFY_VERIFIER_H

#include "support/deadline.h"
#include "verify/bmc.h"
#include "verify/checker.h"
#include "verify/engine.h"
#include "verify/ni.h"
#include "verify/prover.h"

#include <memory>

namespace reflex {

/// Options for a verification run. The three optimization toggles
/// correspond to §6.4's reported speedups and feed the ablation bench.
struct VerifyOptions {
  /// Prover optimizations.
  bool SyntacticSkip = true;
  bool CacheInvariants = true;
  /// Term-level simplification ("domain-specific reduction strategies").
  bool Simplify = true;
  /// Re-check every certificate with the independent checker.
  bool CheckCertificates = true;
  /// Which proof engine serves trace properties (verify/engine.h):
  /// induction (default), pdr, or portfolio (race both; canonical
  /// priority selection keeps verdicts deterministic). Part of the
  /// proof-cache options fingerprint: entries from different engines
  /// never shadow each other.
  EngineKind Engine = EngineKind::Induction;
  /// When the prover answers Unknown, search for a concrete
  /// counterexample up to this depth (0 disables).
  size_t BmcDepthOnUnknown = 0;
  /// Resource limits for that counterexample search. MaxDepth is ignored
  /// here — BmcDepthOnUnknown governs the depth; the state cap and the
  /// per-message payload cap trade breadth for depth (a wide message
  /// alphabet can exhaust MaxStates before a shallow bound completes, so
  /// callers with large alphabets shrink MaxPayloadsPerMessage instead of
  /// raising MaxStates).
  BmcOptions Bmc;
  SymExecLimits Limits;
  /// Per-property budgets (0 = unlimited) and an optional external cancel
  /// flag, polled cooperatively by the prover's hot loops. Budgets never
  /// change what a *completed* proof looks like (polling takes no
  /// decisions), so they are deliberately not part of the proof-cache
  /// options fingerprint.
  uint64_t TimeoutMillis = 0;
  uint64_t StepBudget = 0;
  std::shared_ptr<CancelFlag> Cancel;
  /// Proof-cache re-check mode: when true, a cached Proved entry is
  /// accepted after validating the certificate's hash chain (stored
  /// SHA-256 of the canonical form) and structure, without replaying every
  /// obligation through the checker. The report records which mode served
  /// each hit ("recheck": "fast"/"full"), so audits can tell them apart.
  /// Deliberately not part of the proof-cache options fingerprint: it
  /// changes how much an entry is re-validated on reuse, not what the
  /// proof looks like.
  bool FastCacheRecheck = false;
};

/// Proved/Refuted/Unknown are the verdicts of the paper's automation.
/// Timeout, ResourceExhausted, and Aborted are *non-verdicts*: the budget
/// or the caller ended the attempt first. They carry no certificate, are
/// never cached or reused, and the scheduler may retry them.
enum class VerifyStatus : uint8_t {
  Proved,
  Refuted,
  Unknown,
  Timeout,
  ResourceExhausted,
  Aborted,
};

const char *verifyStatusName(VerifyStatus S);

/// True for the transient budget/cancellation statuses.
bool isBudgetStatus(VerifyStatus S);

struct PropertyResult {
  std::string Name;
  VerifyStatus Status = VerifyStatus::Unknown;
  /// Unknown: the failing obligation; Refuted: the violation explanation.
  std::string Reason;
  double Millis = 0;
  /// Proved only. Carries TermRefs into the originating session's term
  /// context — valid only while that session is alive. Consumers that
  /// outlive the session (the scheduler's merged reports, the incremental
  /// verifier's verdict store, the proof cache) use CertJson instead.
  Certificate Cert;
  /// Proved only: the certificate's audit JSON (Certificate::toJson),
  /// exported while the originating session was alive, so it survives the
  /// session. Empty otherwise.
  std::string CertJson;
  bool CertChecked = false;
  /// True when the verdict was served by the persistent proof cache (and,
  /// for Proved, re-validated by the independent checker).
  bool CacheHit = false;
  /// Proved cache hits only: the entry was accepted by the fast hash-chain
  /// validation (VerifyOptions::FastCacheRecheck) instead of a full
  /// obligation replay. Always false when CertChecked is true.
  bool FastRecheck = false;
  /// Cache hits only: the entry was stored for a *different* version of
  /// the program and validated footprint-relatively (the edit was
  /// disjoint from the proof's footprint, see verify/footprint.h).
  bool FootprintHit = false;
  /// Of the FootprintHit results, those only the path-granular reuse rule
  /// could serve: some footprint key's rendered summary changed, but only
  /// on paths the proof never entered (FootprintGranularity::Path).
  bool PathHit = false;
  /// The entry was a footprint-relative candidate (stored for an edited
  /// program version) but the path-granular check fell back and this
  /// result was re-verified from scratch.
  bool PathFallback = false;
  /// The proof footprint (verify/footprint.h): the handlers this verdict
  /// depends on. Collected for trace properties; AllHandlers for NI and
  /// BMC-assisted verdicts; not Collected for budget statuses.
  ProofFootprint Footprint;
  /// How many attempts the scheduler made (retries + 1); 1 outside the
  /// fault-tolerant scheduler.
  unsigned Attempts = 1;
  /// The engine that produced this verdict ("induction" or "pdr" —
  /// portfolio serves through one of its members, see verify/engine.h).
  /// Restored verbatim on proof-cache hits so reports compare
  /// byte-identical across cache states.
  std::string ServedBy;
  Trace Counterexample;    // Refuted only
};

struct VerificationReport {
  std::string ProgramName;
  std::vector<PropertyResult> Results;
  double TotalMillis = 0;
  /// Work metrics for the ablation bench.
  size_t TermCount = 0;
  uint64_t SolverQueries = 0;
  uint64_t InvariantCacheHits = 0;
  /// Incremental solver core counters (sym/solver.h SolverStats), summed
  /// across the sessions that produced this report: memo hits (private +
  /// shared), scoped checks answered under an asserted assumption stack,
  /// undo-trail entries reversed by pop(), and bytes of recorded reason
  /// trails (zero unless solver-level proof logging ran).
  uint64_t SolverMemoHits = 0;
  uint64_t SolverAssumptionChecks = 0;
  uint64_t SolverTrailUndos = 0;
  uint64_t SolverReasonLogBytes = 0;
  /// Persistent proof-cache traffic (zero when no cache is attached).
  uint64_t ProofCacheHits = 0;
  uint64_t ProofCacheMisses = 0;
  /// Of the hits, how many were served footprint-relatively: the entry
  /// was stored for an edited-since version of the program and revalidated
  /// against the current handler fingerprints (verify/footprint.h).
  uint64_t FootprintHits = 0;
  /// Of the footprint-relative reuses, how many only the *path-granular*
  /// tier could serve (the handler-level rule would have re-verified:
  /// some footprint key's summary changed, but only on paths the proof
  /// never entered)…
  uint64_t PathHits = 0;
  /// …and how many reuse checks against a changed program fell back to
  /// re-verification (footprint intersected the edit, path data missing —
  /// v2 cache entries — or a structural path change).
  uint64_t PathFallbacks = 0;

  bool allProved() const;
  unsigned provedCount() const;
  const PropertyResult *find(const std::string &Name) const;

  /// JSON summary (statuses, reasons, timings — certificates are exported
  /// separately via Certificate::toJson, which needs the term context).
  std::string toJson() const;
};

/// Phase 1 of the two-phase parallel pipeline (docs/PERF.md): everything
/// about a program that is property-independent — the term context with
/// the symbolically executed handler summaries (BehAbs) plus pre-interned
/// property pattern symbols — built once, then frozen. Frozen means the
/// TermContext aborts on any further allocation, so the abstraction can be
/// shared read-only across worker threads without locks; each worker lays
/// its own overlay TermContext on top for property-local terms (Phase 2).
class FrozenAbstraction {
public:
  /// Builds and freezes the abstraction. \p P must be validated and
  /// outlive the result. Respects the budget in \p Opts: on expiry the
  /// outcome is latched (buildOutcome()) and sessions over this
  /// abstraction short-circuit, exactly like a private session whose
  /// build ran out of budget.
  static std::shared_ptr<const FrozenAbstraction>
  build(const Program &P, const VerifyOptions &Opts = {});

  const Program &program() const { return P; }
  const VerifyOptions &options() const { return Opts; }
  const TermContext &context() const { return Ctx; }
  const BehAbs &behAbs() const { return Abs; }
  BudgetOutcome buildOutcome() const { return Outcome; }
  const std::string &buildReason() const { return Reason; }

private:
  FrozenAbstraction(const Program &P, const VerifyOptions &Opts);

  const Program &P;
  VerifyOptions Opts;
  TermContext Ctx;
  BehAbs Abs;
  BudgetOutcome Outcome = BudgetOutcome::Ok;
  std::string Reason;
};

/// The cross-worker caches of Phase 2: sharded, mutex-striped tiers for
/// the solver memo and the §6.4 invariant cache. One instance per
/// (program, frozen abstraction); attach to sessions built over that
/// abstraction. Entries are semantically transparent (a hit returns what
/// the worker would have computed), so verdicts stay deterministic.
struct SharedVerifyCaches {
  SharedSolverMemo SolverMemo;
  SharedInvariantCache Invariants;
};

/// A verification session: one abstraction, many properties. Keeps the
/// term context, solver memo, and invariant cache alive across properties
/// (the cut-point caching of §6.4).
class VerifySession {
public:
  /// \p P must be validated and outlive the session. Builds a private
  /// abstraction (equivalent to a single-use FrozenAbstraction).
  VerifySession(const Program &P, const VerifyOptions &Opts = {});

  /// A session over a shared frozen abstraction: property-local terms go
  /// to a private overlay context; options come from the abstraction.
  /// \p Shared (optional) attaches the cross-worker cache tiers.
  explicit VerifySession(std::shared_ptr<const FrozenAbstraction> Abs,
                         SharedVerifyCaches *Shared = nullptr);
  ~VerifySession();

  /// Verifies a single property under the budget configured in the
  /// session's options (a fresh Deadline per call).
  PropertyResult verify(const Property &Prop);

  /// Verifies a single property under an explicit, caller-owned budget
  /// token (the scheduler's fault plan injects per-job budgets this way).
  PropertyResult verify(const Property &Prop, Deadline &D);

  /// Verifies every property of the program.
  VerificationReport verifyAll();

  TermContext &termContext();
  const BehAbs &behAbs() const;

  // Accessors for layers that drive sessions from outside (the parallel
  // scheduler and the proof cache in src/service): the verified program,
  // the options the session was built with, and the session's work
  // counters for deterministic report merging.
  const Program &program() const;
  const VerifyOptions &options() const;
  uint64_t solverQueries() const;
  uint64_t invariantCacheHits() const;
  /// The full incremental-core counter set (sym/solver.h SolverStats):
  /// memo hits, scoped assumption checks, undo-trail reversals,
  /// reason-log bytes.
  const SolverStats &solverStats() const;

private:
  /// One engine, no dispatch: the shared tail of every verify() call.
  PropertyResult verifyOne(const Property &Prop, Deadline &D, EngineKind Eng);
  /// The portfolio race (see verify/engine.h for the selection rule).
  PropertyResult verifyPortfolio(const Property &Prop, Deadline &D);

  struct Impl;
  std::unique_ptr<Impl> I;
};

/// The ProverOptions subset of a VerifyOptions (the mapping
/// VerifySession::verify applies; exposed so cache re-validation uses
/// exactly the options the certificate was produced with).
ProverOptions proverOptions(const VerifyOptions &Opts);

/// Convenience: parse + validate happen elsewhere; this verifies all
/// properties of an already-validated program in a fresh session.
VerificationReport verifyProgram(const Program &P,
                                 const VerifyOptions &Opts = {});

} // namespace reflex

#endif // REFLEX_VERIFY_VERIFIER_H
