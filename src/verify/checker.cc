//===- verify/checker.cc - Independent certificate checking -----*- C++ -*-===//

#include "verify/checker.h"

#include "support/json.h"
#include "verify/pdr.h"

#include <sstream>

namespace reflex {

namespace {

bool litsEqual(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!(A[I] == B[I]))
      return false;
  return true;
}

bool stepsEqual(const std::vector<ProofStep> &A,
                const std::vector<ProofStep> &B, std::string &Why) {
  if (A.size() != B.size()) {
    Why = "step count differs (" + std::to_string(A.size()) + " vs " +
          std::to_string(B.size()) + ")";
    return false;
  }
  for (size_t I = 0; I < A.size(); ++I) {
    const ProofStep &X = A[I];
    const ProofStep &Y = B[I];
    if (X.Where != Y.Where || X.PathIndex != Y.PathIndex ||
        X.EmitIndex != Y.EmitIndex || X.Kind != Y.Kind ||
        X.LocalIndex != Y.LocalIndex || X.InvariantId != Y.InvariantId ||
        X.Binding != Y.Binding) {
      Why = "step " + std::to_string(I) + " differs at " + X.Where;
      return false;
    }
  }
  return true;
}

bool certsEqual(const Certificate &A, const Certificate &B,
                std::string &Why) {
  if (A.PropertyName != B.PropertyName || A.Kind != B.Kind ||
      A.Engine != B.Engine) {
    Why = "certificate header differs";
    return false;
  }
  if (!stepsEqual(A.Steps, B.Steps, Why))
    return false;
  if (A.Invariants.size() != B.Invariants.size()) {
    Why = "invariant count differs";
    return false;
  }
  for (size_t I = 0; I < A.Invariants.size(); ++I) {
    const InvariantRecord &X = A.Invariants[I];
    const InvariantRecord &Y = B.Invariants[I];
    if (X.Id != Y.Id || X.Forbids != Y.Forbids ||
        !litsEqual(X.Guard, Y.Guard) || X.Action.str() != Y.Action.str()) {
      Why = "invariant " + std::to_string(X.Id) + " differs";
      return false;
    }
    if (!stepsEqual(X.Steps, Y.Steps, Why))
      return false;
  }
  if (A.InvClauses.size() != B.InvClauses.size()) {
    Why = "invariant clause count differs";
    return false;
  }
  for (size_t I = 0; I < A.InvClauses.size(); ++I)
    if (!litsEqual(A.InvClauses[I], B.InvClauses[I])) {
      Why = "invariant clause " + std::to_string(I) + " differs";
      return false;
    }
  if (A.NICases.size() != B.NICases.size()) {
    Why = "NI case count differs";
    return false;
  }
  for (size_t I = 0; I < A.NICases.size(); ++I) {
    const NICaseRecord &X = A.NICases[I];
    const NICaseRecord &Y = B.NICases[I];
    if (X.Where != Y.Where || X.PathIndex != Y.PathIndex ||
        X.SenderHigh != Y.SenderHigh || !litsEqual(X.LabelLits, Y.LabelLits)) {
      Why = "NI case " + std::to_string(I) + " differs at " + X.Where;
      return false;
    }
  }
  return true;
}

/// Line cap for the exported solver log: enough to audit real kernels
/// without bloating certificate JSON for synthetic stress programs. Every
/// trail is replayed regardless of the cap; only the rendering is capped.
constexpr size_t MaxSolverLogLines = 64;

/// Replays every reason trail the re-derivation's solver recorded through
/// the independent trail validator (sym/solver.h's replayReasonTrail —
/// its own union-find, no shared code with either solver core), then
/// renders them into \p Redone's audit log. A single trail that fails
/// replay rejects the certificate: an Unsat the solver cannot justify
/// means the solver (or the undo trail behind it) is broken, and no
/// verdict derived from it is trustworthy.
bool validateSolverLog(const TermContext &Ctx, const Solver &FreshSolv,
                       Certificate &Redone, std::string &Why) {
  const std::vector<ReasonTrail> &Trails = FreshSolv.reasonTrails();
  uint64_t Hash = 1469598103934665603ULL;
  Redone.SolverLog.clear();
  for (size_t I = 0; I < Trails.size(); ++I) {
    std::string ReplayWhy;
    if (!replayReasonTrail(Ctx, Trails[I], ReplayWhy)) {
      Why = "solver reason trail " + std::to_string(I) +
            " failed independent replay: " + ReplayWhy;
      return false;
    }
    std::string Line = formatReasonTrail(Ctx, Trails[I]);
    for (unsigned char C : Line) {
      Hash ^= C;
      Hash *= 1099511628211ULL;
    }
    if (Redone.SolverLog.size() < MaxSolverLogLines)
      Redone.SolverLog.push_back(std::move(Line));
  }
  std::ostringstream OS;
  OS << "replayed " << Trails.size() << " unsat trails; fnv1a=" << std::hex
     << Hash;
  Redone.SolverLog.push_back(OS.str());
  return true;
}

/// Re-derives a certificate for \p Prop with the engine named by
/// \p Engine ("" / "induction" for the paper's prover, "pdr" for the
/// reachability engine). False with \p Why when the engine is unknown or
/// the re-derivation does not prove the property.
bool rederive(TermContext &Ctx, Solver &FreshSolv, const Program &P,
              const BehAbs &Abs, const Property &Prop,
              const ProverOptions &Opts, const std::string &Engine,
              Certificate &Redone, std::string &Why) {
  if (!Prop.isTrace()) {
    NIProofOutcome Redo = proveNonInterference(Ctx, FreshSolv, P, Abs, Prop);
    if (!Redo.Proved) {
      Why = "re-derivation failed: " + Redo.Reason;
      return false;
    }
    Redone = std::move(Redo.Cert);
    return true;
  }
  if (Engine == "pdr") {
    PdrOutcome Redo = provePdrProperty(Ctx, FreshSolv, P, Abs, Prop, Opts);
    if (!Redo.Proved) {
      Why = "re-derivation failed: " + Redo.Reason;
      return false;
    }
    Redone = std::move(Redo.Cert);
    return true;
  }
  if (!Engine.empty() && Engine != "induction") {
    Why = "unknown certificate engine '" + Engine + "'";
    return false;
  }
  // Fresh invariant cache: ids and proofs re-derived from scratch.
  InvariantCache FreshCache;
  TraceProofOutcome Redo =
      proveTraceProperty(Ctx, FreshSolv, P, Abs, Prop, Opts, FreshCache);
  if (!Redo.Proved) {
    Why = "re-derivation failed: " + Redo.Reason;
    return false;
  }
  Redone = std::move(Redo.Cert);
  return true;
}

} // namespace

CheckOutcome checkCertificate(TermContext &Ctx, const Program &P,
                              const BehAbs &Abs, const Property &Prop,
                              const Certificate &Cert,
                              const ProverOptions &Opts) {
  CheckOutcome Out;

  // Fresh solver: every query in the re-derivation is recomputed, with
  // reason-trail logging on so each Unsat answer justifies itself.
  Solver FreshSolv(Ctx);
  FreshSolv.setLogEnabled(true);

  Certificate Redone;
  if (!rederive(Ctx, FreshSolv, P, Abs, Prop, Opts, Cert.Engine, Redone,
                Out.Why))
    return Out;
  if (!validateSolverLog(Ctx, FreshSolv, Redone, Out.Why))
    return Out;
  if (!certsEqual(Cert, Redone, Out.Why))
    return Out;
  // PDR certificates additionally get their clausal invariant re-proved
  // obligation by obligation: a tampered clause set that somehow survived
  // the structural comparison still fails the solver here.
  if (Cert.Engine == "pdr" &&
      !checkPdrInvariant(Ctx, FreshSolv, P, Abs, Prop, Cert, Opts, Out.Why))
    return Out;
  Out.SolverLog = std::move(Redone.SolverLog);
  Out.Ok = true;
  return Out;
}

RecheckOutcome checkCanonicalCertificate(TermContext &Ctx, const Program &P,
                                         const BehAbs &Abs,
                                         const Property &Prop,
                                         const std::string &Canonical,
                                         const ProverOptions &Opts) {
  RecheckOutcome Out;

  // The canonical form names its engine (induction omits the field);
  // re-derive with the same one, else the byte comparison is meaningless.
  std::string Engine;
  if (Result<JsonValue> V = parseJson(Canonical))
    if (const JsonValue *E = V->get("engine"); E && E->isString())
      Engine = E->stringValue();

  // Fresh solver and invariant cache: the cached certificate gets the same
  // from-scratch re-derivation checkCertificate performs, reason trails
  // included.
  Solver FreshSolv(Ctx);
  FreshSolv.setLogEnabled(true);
  if (!rederive(Ctx, FreshSolv, P, Abs, Prop, Opts, Engine, Out.Rederived,
                Out.Why))
    return Out;
  if (!validateSolverLog(Ctx, FreshSolv, Out.Rederived, Out.Why))
    return Out;
  Out.RederivedProved = true;
  if (Out.Rederived.canonical(Ctx) != Canonical) {
    Out.Why = "cached certificate differs from re-derivation";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

} // namespace reflex
