//===- verify/checker.cc - Independent certificate checking -----*- C++ -*-===//

#include "verify/checker.h"

#include <sstream>

namespace reflex {

namespace {

bool litsEqual(const std::vector<Lit> &A, const std::vector<Lit> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!(A[I] == B[I]))
      return false;
  return true;
}

bool stepsEqual(const std::vector<ProofStep> &A,
                const std::vector<ProofStep> &B, std::string &Why) {
  if (A.size() != B.size()) {
    Why = "step count differs (" + std::to_string(A.size()) + " vs " +
          std::to_string(B.size()) + ")";
    return false;
  }
  for (size_t I = 0; I < A.size(); ++I) {
    const ProofStep &X = A[I];
    const ProofStep &Y = B[I];
    if (X.Where != Y.Where || X.PathIndex != Y.PathIndex ||
        X.EmitIndex != Y.EmitIndex || X.Kind != Y.Kind ||
        X.LocalIndex != Y.LocalIndex || X.InvariantId != Y.InvariantId ||
        X.Binding != Y.Binding) {
      Why = "step " + std::to_string(I) + " differs at " + X.Where;
      return false;
    }
  }
  return true;
}

bool certsEqual(const Certificate &A, const Certificate &B,
                std::string &Why) {
  if (A.PropertyName != B.PropertyName || A.Kind != B.Kind) {
    Why = "certificate header differs";
    return false;
  }
  if (!stepsEqual(A.Steps, B.Steps, Why))
    return false;
  if (A.Invariants.size() != B.Invariants.size()) {
    Why = "invariant count differs";
    return false;
  }
  for (size_t I = 0; I < A.Invariants.size(); ++I) {
    const InvariantRecord &X = A.Invariants[I];
    const InvariantRecord &Y = B.Invariants[I];
    if (X.Id != Y.Id || X.Forbids != Y.Forbids ||
        !litsEqual(X.Guard, Y.Guard) || X.Action.str() != Y.Action.str()) {
      Why = "invariant " + std::to_string(X.Id) + " differs";
      return false;
    }
    if (!stepsEqual(X.Steps, Y.Steps, Why))
      return false;
  }
  if (A.NICases.size() != B.NICases.size()) {
    Why = "NI case count differs";
    return false;
  }
  for (size_t I = 0; I < A.NICases.size(); ++I) {
    const NICaseRecord &X = A.NICases[I];
    const NICaseRecord &Y = B.NICases[I];
    if (X.Where != Y.Where || X.PathIndex != Y.PathIndex ||
        X.SenderHigh != Y.SenderHigh || !litsEqual(X.LabelLits, Y.LabelLits)) {
      Why = "NI case " + std::to_string(I) + " differs at " + X.Where;
      return false;
    }
  }
  return true;
}

} // namespace

CheckOutcome checkCertificate(TermContext &Ctx, const Program &P,
                              const BehAbs &Abs, const Property &Prop,
                              const Certificate &Cert,
                              const ProverOptions &Opts) {
  CheckOutcome Out;

  // Fresh solver: every query in the re-derivation is recomputed.
  Solver FreshSolv(Ctx);

  if (Prop.isTrace()) {
    // Fresh invariant cache: ids and proofs re-derived from scratch.
    InvariantCache FreshCache;
    TraceProofOutcome Redo = proveTraceProperty(Ctx, FreshSolv, P, Abs, Prop,
                                                Opts, FreshCache);
    if (!Redo.Proved) {
      Out.Why = "re-derivation failed: " + Redo.Reason;
      return Out;
    }
    if (!certsEqual(Cert, Redo.Cert, Out.Why))
      return Out;
  } else {
    NIProofOutcome Redo = proveNonInterference(Ctx, FreshSolv, P, Abs, Prop);
    if (!Redo.Proved) {
      Out.Why = "re-derivation failed: " + Redo.Reason;
      return Out;
    }
    if (!certsEqual(Cert, Redo.Cert, Out.Why))
      return Out;
  }
  Out.Ok = true;
  return Out;
}

RecheckOutcome checkCanonicalCertificate(TermContext &Ctx, const Program &P,
                                         const BehAbs &Abs,
                                         const Property &Prop,
                                         const std::string &Canonical,
                                         const ProverOptions &Opts) {
  RecheckOutcome Out;

  // Fresh solver and invariant cache: the cached certificate gets the same
  // from-scratch re-derivation checkCertificate performs.
  Solver FreshSolv(Ctx);
  if (Prop.isTrace()) {
    InvariantCache FreshCache;
    TraceProofOutcome Redo =
        proveTraceProperty(Ctx, FreshSolv, P, Abs, Prop, Opts, FreshCache);
    if (!Redo.Proved) {
      Out.Why = "re-derivation failed: " + Redo.Reason;
      return Out;
    }
    Out.Rederived = std::move(Redo.Cert);
  } else {
    NIProofOutcome Redo = proveNonInterference(Ctx, FreshSolv, P, Abs, Prop);
    if (!Redo.Proved) {
      Out.Why = "re-derivation failed: " + Redo.Reason;
      return Out;
    }
    Out.Rederived = std::move(Redo.Cert);
  }
  Out.RederivedProved = true;
  if (Out.Rederived.canonical(Ctx) != Canonical) {
    Out.Why = "cached certificate differs from re-derivation";
    return Out;
  }
  Out.Ok = true;
  return Out;
}

} // namespace reflex
