//===- verify/bmc.h - Bounded refutation ------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded model checker over the *concrete* semantics: exhaustively
/// drives the kernel through short message sequences (small payload
/// domains harvested from the program text) and checks each trace against
/// a trace property. A hit is a genuine counterexample trace.
///
/// This is the complement of the prover's incompleteness story: the
/// prover never claims falsity, and in the paper's own evaluation (§6.3)
/// two web-server policies "turned out to be false" — exactly the
/// situation where a concrete counterexample tells the user what to fix.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_BMC_H
#define REFLEX_VERIFY_BMC_H

#include "ast/program.h"
#include "prop/check.h"

#include <cstdint>
#include <string>

namespace reflex {

struct BmcOptions {
  /// Maximum number of exchanges.
  size_t MaxDepth = 4;
  /// Global cap on explored states.
  size_t MaxStates = 50000;
  /// Cap on payload combinations enumerated per message type.
  size_t MaxPayloadsPerMessage = 32;
};

struct BmcResult {
  bool Violated = false;
  Trace Counterexample;
  std::string Explanation;
  size_t StatesExplored = 0;
};

/// Searches for a concrete trace of \p P violating the trace property
/// \p Prop. Non-trace properties are rejected (returns non-violated).
BmcResult bmcSearch(const Program &P, const Property &Prop,
                    const BmcOptions &Opts = {});

/// The "interesting" payload values of type \p Ty harvested from the
/// program and property text (every literal, plus a couple of fresh
/// tokens). Shared by the BMC's exhaustive driving and the CLI's fuzz
/// driver.
std::vector<Value> harvestDomain(const Program &P, BaseType Ty);

} // namespace reflex

#endif // REFLEX_VERIFY_BMC_H
