//===- verify/behabs.h - Behavioral abstraction -----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BehAbs (paper §3.3): the behavioral abstraction of a program — an
/// inductively defined characterization of its reachable states and
/// traces. BehAbs holds on the state after init, and inductively on any
/// state resulting from an exchange (the Exchange relation: receive a
/// message m from a component c of some type, run the matching handler
/// under some nondeterministic context).
///
/// Concretely, the abstraction is: the init summary plus one handler
/// summary for *every* (component type, message type) pair — declared
/// handlers symbolically executed, everything else the implicit
/// no-response default. The prover's induction (verify/prover.h) ranges
/// over exactly these cases; the refinement tests (verify/absreplay.h)
/// check that every concrete interpreter trace is accepted by it — our
/// testing stand-in for the paper's once-and-for-all Coq soundness proof.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_BEHABS_H
#define REFLEX_VERIFY_BEHABS_H

#include "verify/symexec.h"

#include <unordered_map>

namespace reflex {

/// The behavioral abstraction of a validated program.
struct BehAbs {
  InitSummary Init;
  /// One summary per (component type, message type), in declaration order
  /// (component-major).
  std::vector<HandlerSummary> Handlers;

  const HandlerSummary *findSummary(const std::string &CompType,
                                    const std::string &MsgName) const;

  /// Builds the (component type, message) -> summary index consulted by
  /// findSummary. buildBehAbs calls this once after filling Handlers;
  /// hand-assembled abstractions that skip it fall back to a linear scan.
  /// Must not be called once the abstraction is shared across threads.
  void indexSummaries();

  /// True if any part of the abstraction overflowed symbolic-execution
  /// limits (prover must answer Unknown).
  bool incomplete() const;

private:
  std::unordered_map<std::string, size_t> SummaryIndex;
};

/// Builds the abstraction. \p P must be validated; all terms are created
/// in \p Ctx.
BehAbs buildBehAbs(TermContext &Ctx, const Program &P,
                   const SymExecLimits &Limits = {});

} // namespace reflex

#endif // REFLEX_VERIFY_BEHABS_H
