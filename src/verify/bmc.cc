//===- verify/bmc.cc - Bounded refutation -----------------------*- C++ -*-===//

#include "verify/bmc.h"

#include "interp/evaluator.h"

#include <set>
#include <unordered_map>

namespace reflex {

namespace {

/// Harvests the literal values appearing anywhere in the program and the
/// property — the "interesting" payload domain for exhaustive driving.
class DomainCollector {
public:
  std::set<int64_t> Nums{0, 1};
  std::set<std::string> Strs;

  void fromExpr(const Expr &E) {
    switch (E.kind()) {
    case Expr::Lit:
      addValue(cast<LitExpr>(E).value());
      break;
    case Expr::Unary:
      fromExpr(cast<UnaryExpr>(E).operand());
      break;
    case Expr::Binary:
      fromExpr(cast<BinaryExpr>(E).lhs());
      fromExpr(cast<BinaryExpr>(E).rhs());
      break;
    case Expr::ConfigRef:
      fromExpr(cast<ConfigRefExpr>(E).base());
      break;
    default:
      break;
    }
  }

  void fromCmd(const Cmd &C) {
    switch (C.kind()) {
    case Cmd::Block:
      for (const CmdPtr &Sub : castCmd<BlockCmd>(C).commands())
        fromCmd(*Sub);
      break;
    case Cmd::Assign:
      fromExpr(castCmd<AssignCmd>(C).rhs());
      break;
    case Cmd::If: {
      const auto &If = castCmd<IfCmd>(C);
      fromExpr(If.cond());
      fromCmd(If.thenCmd());
      fromCmd(If.elseCmd());
      break;
    }
    case Cmd::Send:
      for (const ExprPtr &Arg : castCmd<SendCmd>(C).args())
        fromExpr(*Arg);
      break;
    case Cmd::Spawn:
      for (const ExprPtr &Arg : castCmd<SpawnCmd>(C).config())
        fromExpr(*Arg);
      break;
    case Cmd::Call:
      for (const ExprPtr &Arg : castCmd<CallCmd>(C).args())
        fromExpr(*Arg);
      break;
    case Cmd::Lookup: {
      const auto &L = castCmd<LookupCmd>(C);
      for (const LookupConstraint &LC : L.constraints())
        fromExpr(*LC.Expr);
      fromCmd(L.thenCmd());
      fromCmd(L.elseCmd());
      break;
    }
    case Cmd::Nop:
      break;
    }
  }

  void fromPattern(const ActionPattern &Pat) {
    for (const CompFieldPattern &F : Pat.Comp.Fields)
      if (F.Pat.Kind == PatTerm::Lit)
        addValue(F.Pat.LitVal);
    if (Pat.Kind != ActionPattern::Spawn)
      for (const PatTerm &T : Pat.Msg.Args)
        if (T.Kind == PatTerm::Lit)
          addValue(T.LitVal);
  }

  void addValue(const Value &V) {
    if (V.type() == BaseType::Num)
      Nums.insert(V.asNum());
    else if (V.type() == BaseType::Str)
      Strs.insert(V.asStr());
  }

  std::vector<Value> domain(BaseType Ty) const {
    std::vector<Value> Out;
    switch (Ty) {
    case BaseType::Num:
      for (int64_t N : Nums)
        Out.push_back(Value::num(N));
      break;
    case BaseType::Str:
      for (const std::string &S : Strs)
        Out.push_back(Value::str(S));
      Out.push_back(Value::str("bmc_a"));
      Out.push_back(Value::str("bmc_b"));
      break;
    case BaseType::Bool:
      Out.push_back(Value::boolean(false));
      Out.push_back(Value::boolean(true));
      break;
    case BaseType::Fdesc:
      Out.push_back(Value::fdesc(7));
      break;
    case BaseType::Comp:
      break;
    }
    return Out;
  }
};

DomainCollector collectDomains(const Program &P) {
  DomainCollector DC;
  if (P.Init)
    DC.fromCmd(*P.Init);
  for (const Handler &H : P.Handlers)
    DC.fromCmd(*H.Body);
  for (const StateVarDecl &V : P.StateVars)
    DC.addValue(V.Init);
  for (const Property &Prop : P.Properties)
    if (Prop.isTrace()) {
      DC.fromPattern(Prop.traceProp().A);
      DC.fromPattern(Prop.traceProp().B);
    }
  return DC;
}

class Bmc {
public:
  Bmc(const Program &P, const TraceProperty &TP, const BmcOptions &Opts)
      : P(P), TP(TP), Opts(Opts), Eval(P) {
    DomainCollector DC = collectDomains(P);

    // Pre-enumerate payload combinations per message type.
    for (const MessageDecl &MD : P.Messages) {
      std::vector<std::vector<Value>> Combos{{}};
      for (BaseType Ty : MD.Payload) {
        std::vector<Value> Dom = DC.domain(Ty);
        std::vector<std::vector<Value>> Next;
        for (const auto &Base : Combos)
          for (const Value &V : Dom) {
            if (Next.size() >= Opts.MaxPayloadsPerMessage)
              break;
            std::vector<Value> Ext = Base;
            Ext.push_back(V);
            Next.push_back(std::move(Ext));
          }
        Combos = std::move(Next);
        if (Combos.size() > Opts.MaxPayloadsPerMessage)
          Combos.resize(Opts.MaxPayloadsPerMessage);
      }
      Payloads[MD.Name] = std::move(Combos);
    }
    CallDomain = DC.domain(BaseType::Str);
  }

  BmcResult run() {
    KernelState St;
    EffectHooks Hooks = hooks();
    Eval.runInit(St, Hooks);
    if (!check(St))
      dfs(St, 0);
    Result.StatesExplored = States;
    return std::move(Result);
  }

private:
  EffectHooks hooks() {
    EffectHooks H;
    // Deterministic rotation over the string domain: each execution is a
    // genuine run under *some* nondeterministic context, so any violation
    // found is real.
    H.OnCall = [this](const std::string &,
                      const std::vector<Value> &) -> Value {
      if (CallDomain.empty())
        return Value::str("");
      return CallDomain[CallCounter++ % CallDomain.size()];
    };
    return H;
  }

  /// Returns true (and records) if the current trace violates the
  /// property.
  bool check(const KernelState &St) {
    if (Result.Violated)
      return true;
    if (auto V = checkTraceProperty(St.Tr, TP)) {
      Result.Violated = true;
      Result.Counterexample = St.Tr;
      Result.Explanation = V->Explanation;
      return true;
    }
    return false;
  }

  void dfs(const KernelState &St, size_t Depth) {
    if (Result.Violated || Depth >= Opts.MaxDepth || States >= Opts.MaxStates)
      return;
    // Note: no state-hash pruning. Two executions reaching the same kernel
    // state with different *traces* are not interchangeable for trace
    // properties (e.g. "Crash received, state unchanged" must still flag a
    // later lock). The depth and state caps bound the search instead.

    // Try every (live component, message, payload) exchange.
    size_t NumComps = St.Tr.Components.size();
    for (size_t C = 0; C < NumComps && !Result.Violated; ++C) {
      for (const MessageDecl &MD : P.Messages) {
        for (const std::vector<Value> &Args : Payloads[MD.Name]) {
          if (Result.Violated || States >= Opts.MaxStates)
            return;
          ++States;
          KernelState Next = St;
          Message M;
          M.Name = MD.Name;
          M.Args = Args;
          EffectHooks Hooks = hooks();
          Eval.runExchange(Next, St.Tr.Components[C].Id, M, Hooks);
          if (check(Next))
            return;
          dfs(Next, Depth + 1);
        }
      }
    }
  }

  const Program &P;
  const TraceProperty &TP;
  BmcOptions Opts;
  Evaluator Eval;
  std::map<std::string, std::vector<std::vector<Value>>> Payloads;
  std::vector<Value> CallDomain;
  size_t CallCounter = 0;
  size_t States = 0;
  BmcResult Result;
};

} // namespace

std::vector<Value> harvestDomain(const Program &P, BaseType Ty) {
  return collectDomains(P).domain(Ty);
}

BmcResult bmcSearch(const Program &P, const Property &Prop,
                    const BmcOptions &Opts) {
  if (!Prop.isTrace())
    return {};
  return Bmc(P, Prop.traceProp(), Opts).run();
}

} // namespace reflex
