//===- verify/pdr.cc - Property-directed reachability -----------*- C++ -*-===//

#include "verify/pdr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace reflex {

namespace {

std::string whereOf(const HandlerSummary &S) {
  return S.CompType + "=>" + S.MsgName;
}

/// Mirror of the induction prover's syntactic-skip predicate: can the
/// body of \p S possibly emit an action matching \p Pat? The two engines
/// must agree so `--engine` changes which proof is found, never which
/// obligations exist.
bool summaryMayEmit(const Program &P, const HandlerSummary &S,
                    const ActionPattern &Pat) {
  switch (Pat.Kind) {
  case ActionPattern::Recv:
    return S.CompType == Pat.Comp.TypeName && S.MsgName == Pat.Msg.MsgName;
  case ActionPattern::Send: {
    if (S.IsDefault)
      return false;
    const Handler *H = P.findHandler(S.CompType, S.MsgName);
    assert(H && "summary without handler");
    return cmdSendsMessage(*H->Body, Pat.Msg.MsgName);
  }
  case ActionPattern::Spawn: {
    if (S.IsDefault)
      return false;
    const Handler *H = P.findHandler(S.CompType, S.MsgName);
    assert(H && "summary without handler");
    return cmdSpawnsType(*H->Body, Pat.Comp.TypeName);
  }
  }
  return true;
}

/// True if \p T mentions only canonical state symbols and literals: the
/// fragment PDR frames speak. Stricter than isGuardTerm — pattern symbols
/// are trigger-bound, not state, so they cannot appear in a frame clause.
bool isStateTerm(TermRef T) {
  switch (T->Kind) {
  case TermKind::SymVar:
    return T->Tag == SymTag::State;
  case TermKind::Comp:
    return false;
  default:
    for (TermRef Op : T->Ops)
      if (!isStateTerm(Op))
        return false;
    return true;
  }
}

/// A conjunction of literals over the canonical state symbols, kept in a
/// canonical rendering order. Frames, bad cubes, and predecessor cubes are
/// all Cubes. Ordering by *rendered string* — never by TermNode::Id —
/// keeps every derived artifact independent of overlay allocation order,
/// which is what makes PDR certificates byte-identical across sessions,
/// worker counts, and cache states.
struct Cube {
  std::vector<Lit> Lits;
  std::vector<std::string> Strs; ///< rendered literals, sorted; parallel
  std::string Key;               ///< Strs joined — the frame-map key
};

class Pdr {
public:
  Pdr(TermContext &Ctx, Solver &Solv, const Program &P, const BehAbs &Abs,
      const TraceProperty &TP, const ProverOptions &Opts)
      : Ctx(Ctx), Solv(Solv), P(P), Abs(Abs), TP(TP), Opts(Opts) {
    for (const HandlerSummary &S : Abs.Handlers) {
      std::string W = whereOf(S);
      for (const SymPath &Path : S.Paths)
        Trans.push_back(Transition{&S, &Path, W});
    }
  }

  //===------------------------------------------------------------------===//
  // Phase 1: obligation scan (shared with the checker)
  //===------------------------------------------------------------------===//

  /// One obligation the local discharges could not close: its recorded
  /// step (Justify::FrameBlocked) and the pre-state cube whose
  /// unreachability closes it.
  struct FrameObl {
    size_t StepIndex = 0;
    Cube C;
  };

  std::vector<ProofStep> Steps;
  std::vector<FrameObl> FrameObls;

  /// Enumerates every proof obligation exactly like the induction engine
  /// (init paths, then handlers in declaration order, emissions in path
  /// order) and discharges each locally — same-path emissions, the
  /// component-origin axiom, failed-lookup facts. Obligations that would
  /// send the induction engine into invariant synthesis become
  /// FrameBlocked steps with a bad cube instead. Returns false (with
  /// \p Why) when an obligation admits no local discharge *and* no cube:
  /// init obligations (there is no pre-state to block) and obligations
  /// whose assumption set has no state-pure part.
  bool scanObligations(std::string &Why) {
    for (size_t I = 0; I < Abs.Init.Paths.size(); ++I)
      if (!scanPath("init", static_cast<int>(I), Abs.Init.Paths[I],
                    /*IsInit=*/true, Why))
        return false;
    for (const HandlerSummary &S : Abs.Handlers) {
      if (Opts.SyntacticSkip && !summaryMayEmit(P, S, TP.trigger())) {
        ProofStep Step;
        Step.Where = whereOf(S);
        Step.Kind = Justify::SyntacticSkip;
        Steps.push_back(std::move(Step));
        continue;
      }
      for (size_t I = 0; I < S.Paths.size(); ++I)
        if (!scanPath(whereOf(S), static_cast<int>(I), S.Paths[I],
                      /*IsInit=*/false, Why))
          return false;
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Phase 2: frames (the prover side)
  //===------------------------------------------------------------------===//

  enum class BlockOutcome { Proved, Cex, GiveUp };

  /// Blocks every scanned bad cube at increasing levels until two adjacent
  /// frames coincide (Proved; the fixpoint frame's clauses are exported
  /// into \p Clauses) or a level-0 obligation intersects the initial
  /// states (Cex; \p CexDepth is the abstract counterexample's length and
  /// \p CexWhere the obligation it violates) or a cap/budget ends the
  /// attempt (GiveUp with \p Why).
  BlockOutcome runFrames(std::vector<std::vector<Lit>> &Clauses,
                         size_t &CexDepth, std::string &CexWhere,
                         std::string &Why) {
    Frames.assign(2, {});
    for (size_t K = 1; K <= MaxLevel; ++K) {
      if (Frames.size() <= K + 1)
        Frames.resize(K + 2);
      for (const FrameObl &B : FrameObls) {
        BlockOutcome O = blockCube(B.C, K, CexDepth, Why);
        if (O == BlockOutcome::Cex) {
          CexWhere = Steps[B.StepIndex].Where;
          return O;
        }
        if (O == BlockOutcome::GiveUp)
          return O;
      }
      int Fix = propagate();
      if (Fix >= 0) {
        for (const auto &[Key, C] : Frames[Fix]) {
          (void)Key;
          std::vector<Lit> Clause;
          Clause.reserve(C.Lits.size());
          for (const Lit &L : C.Lits)
            Clause.emplace_back(L.Atom, !L.Pos);
          Clauses.push_back(std::move(Clause));
        }
        return BlockOutcome::Proved;
      }
    }
    Why = "frame limit reached (" + std::to_string(MaxLevel) +
          ") without an inductive fixpoint";
    return BlockOutcome::GiveUp;
  }

  //===------------------------------------------------------------------===//
  // Phase 3: invariant validation (the checker side)
  //===------------------------------------------------------------------===//

  /// Validates a clausal invariant (given as clauses — disjunctions of
  /// literals over state symbols) against the transition relation: it must
  /// be initial, consecutive, and exclude every scanned bad cube. Each
  /// check is a solver obligation; the first failure is reported.
  bool validateInvariant(const std::vector<std::vector<Lit>> &ClauseLits,
                         std::string &Why) {
    std::vector<Cube> Blocked;
    Blocked.reserve(ClauseLits.size());
    for (const std::vector<Lit> &Clause : ClauseLits) {
      std::vector<Lit> CubeLits;
      CubeLits.reserve(Clause.size());
      for (const Lit &L : Clause)
        CubeLits.emplace_back(L.Atom, !L.Pos);
      Cube C = makeCubeExact(CubeLits);
      if (C.Lits.empty()) {
        Why = "invariant clause " + std::to_string(Blocked.size()) +
              " is empty or not over state symbols";
        return false;
      }
      Blocked.push_back(std::move(C));
    }
    std::vector<const Cube *> All;
    All.reserve(Blocked.size());
    for (const Cube &C : Blocked)
      All.push_back(&C);

    // Initial: no init path may end inside a blocked cube.
    for (size_t I = 0; I < Blocked.size(); ++I)
      if (initIntersects(Blocked[I])) {
        Why = "invariant clause " + std::to_string(I) +
              " does not hold after init";
        return false;
      }
    // Consecutive: no transition may leave the invariant region.
    for (size_t I = 0; I < Blocked.size(); ++I)
      for (const Transition &T : Trans) {
        std::vector<Lit> Conj = T.Path->Cond;
        appendPostImage(Conj, Blocked[I], *T.Path);
        if (clausesExclude(Conj, All))
          continue;
        Why = "invariant clause " + std::to_string(I) +
              " is not preserved by " + T.Where;
        return false;
      }
    // Property-implying: every frame-blocked obligation's cube excluded.
    for (const FrameObl &B : FrameObls)
      if (!clausesExclude(B.C.Lits, All)) {
        Why = "invariant does not exclude the obligation at " +
              Steps[B.StepIndex].Where;
        return false;
      }
    return true;
  }

private:
  struct Transition {
    const HandlerSummary *S;
    const SymPath *Path;
    std::string Where;
  };

  //===------------------------------------------------------------------===//
  // Cubes
  //===------------------------------------------------------------------===//

  std::string litStr(const Lit &L) const {
    return (L.Pos ? "" : "!") + Ctx.str(L.Atom);
  }

  /// Builds a cube from exactly \p Lits (no projection; rejects non-state
  /// literals by dropping them — callers that need exactness check sizes).
  Cube makeCubeExact(const std::vector<Lit> &Lits) {
    std::vector<Lit> Keep;
    for (const Lit &L : Lits)
      if (isStateTerm(L.Atom) && L.Atom->Kind != TermKind::BoolLit)
        Keep.push_back(L);
    return canonicalize(std::move(Keep));
  }

  /// The state-pure projection of an assumption set: the literals every
  /// concrete pre-state satisfying the assumptions must satisfy on its
  /// own. Over-approximates the pre-state region, so blocking the cube
  /// soundly blocks the obligation.
  Cube project(const std::vector<Lit> &Assume) {
    return makeCubeExact(Assume);
  }

  Cube canonicalize(std::vector<Lit> Lits) {
    Cube C;
    std::vector<std::pair<std::string, Lit>> Tagged;
    Tagged.reserve(Lits.size());
    for (const Lit &L : Lits)
      Tagged.emplace_back(litStr(L), L);
    std::sort(Tagged.begin(), Tagged.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[S, L] : Tagged) {
      if (!C.Strs.empty() && C.Strs.back() == S)
        continue;
      C.Strs.push_back(S);
      C.Lits.push_back(L);
      if (C.Key.size() > 1)
        C.Key += " & ";
      C.Key += S;
    }
    return C;
  }

  /// Appends the post-image of \p C through \p Path: each literal with the
  /// canonical state symbols replaced by the path's update terms.
  void appendPostImage(std::vector<Lit> &Out, const Cube &C,
                       const SymPath &Path) {
    std::unordered_map<TermRef, TermRef> Subst;
    for (const auto &[Var, Term] : Path.Updates) {
      const StateVarDecl *V = P.findStateVar(Var);
      assert(V && Term);
      Subst.emplace(Ctx.stateSym(Var, V->Type), Term);
    }
    for (const Lit &L : C.Lits)
      Out.emplace_back(Ctx.substitute(L.Atom, Subst), L.Pos);
  }

  /// Does some init path end inside \p C?
  bool initIntersects(const Cube &C) {
    for (const SymPath &Q : Abs.Init.Paths) {
      std::vector<Lit> Conj = Q.Cond;
      appendPostImage(Conj, C, Q);
      if (Solv.maybeSat(Conj))
        return true;
    }
    return false;
  }

  //===------------------------------------------------------------------===//
  // Frame clauses in queries
  //===------------------------------------------------------------------===//

  /// The solver handles conjunctions of literals only, so frame clauses
  /// (disjunctions) enter by case split: a query is excluded by the
  /// clause set iff every branch — one negated cube literal per clause —
  /// is Unsat. A branch budget bounds the split; overflow answers "not
  /// excluded", which only ever costs completeness, never soundness.
  bool clausesExclude(const std::vector<Lit> &Conj,
                      const std::vector<const Cube *> &Clauses) {
    // The transition conjunction is asserted once; the branch descent
    // below pushes one negated clause literal per scope, so the solver
    // keeps the shared prefix's congruence closure across all branches
    // of the case split instead of re-solving it from scratch.
    Solver::Scope Root(Solv, Conj);
    size_t Budget = MaxClauseBranches;
    return branchExcludes(Clauses, 0, Budget);
  }

  bool branchExcludes(const std::vector<const Cube *> &Clauses, size_t Idx,
                      size_t &Budget) {
    if (Solv.check() == SatResult::Unsat)
      return true;
    if (Idx == Clauses.size())
      return false;
    // Clause = ¬(cube) = disjunction of the cube literals' negations.
    for (const Lit &L : Clauses[Idx]->Lits) {
      if (Budget == 0)
        return false;
      --Budget;
      Solver::Scope Branch(Solv);
      Solv.assume(Lit(L.Atom, !L.Pos));
      if (!branchExcludes(Clauses, Idx + 1, Budget))
        return false;
    }
    return true;
  }

  std::vector<const Cube *> frameClauses(size_t J) const {
    std::vector<const Cube *> Out;
    Out.reserve(Frames[J].size());
    for (const auto &[Key, C] : Frames[J]) {
      (void)Key;
      Out.push_back(&C);
    }
    return Out;
  }

  /// Is \p C unreachable in one step from frame \p J (no transition, from
  /// a state satisfying F_J's clauses, lands in C)? On failure \p Failed
  /// names the first offending transition, in declaration order.
  bool consecutionBlocked(const Cube &C, size_t J, const Transition *&Failed) {
    std::vector<const Cube *> Clauses = frameClauses(J);
    for (const Transition &T : Trans) {
      std::vector<Lit> Conj = T.Path->Cond;
      appendPostImage(Conj, C, *T.Path);
      if (clausesExclude(Conj, Clauses))
        continue;
      Failed = &T;
      return false;
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Blocking
  //===------------------------------------------------------------------===//

  /// Is \p C already subsumed by a clause of frame \p Level (a blocked
  /// cube that is a subset of C blocks every state of C)?
  bool subsumedAt(const Cube &C, size_t Level) const {
    for (const auto &[Key, D] : Frames[Level]) {
      (void)Key;
      if (D.Strs.size() <= C.Strs.size() &&
          std::includes(C.Strs.begin(), C.Strs.end(), D.Strs.begin(),
                        D.Strs.end()))
        return true;
    }
    return false;
  }

  void addBlocked(const Cube &C, size_t Level) {
    for (size_t J = 0; J <= Level && J < Frames.size(); ++J)
      Frames[J].emplace(C.Key, C);
  }

  /// Inductive generalization: drop literals (in canonical order) while
  /// the smaller cube remains excluded from init and, for Level >= 1,
  /// unreachable from frame Level-1. Smaller cubes are stronger clauses
  /// and make frames converge.
  Cube generalize(Cube C, size_t Level) {
    for (size_t I = 0; I < C.Lits.size() && C.Lits.size() > 1;) {
      std::vector<Lit> Smaller;
      for (size_t J = 0; J < C.Lits.size(); ++J)
        if (J != I)
          Smaller.push_back(C.Lits[J]);
      Cube Cand = canonicalize(std::move(Smaller));
      bool Ok = !initIntersects(Cand);
      if (Ok && Level >= 1) {
        const Transition *F = nullptr;
        Ok = consecutionBlocked(Cand, Level - 1, F);
      }
      if (Ok)
        C = std::move(Cand);
      else
        ++I;
    }
    return C;
  }

  struct Obl {
    Cube C;
    size_t Level;
  };

  BlockOutcome blockCube(const Cube &Bad, size_t Level, size_t &CexDepth,
                         std::string &Why) {
    std::vector<Obl> Stack;
    Stack.push_back(Obl{Bad, Level});
    while (!Stack.empty()) {
      if (Opts.Budget && Opts.Budget->expired()) {
        Why = "verification budget exhausted";
        return BlockOutcome::GiveUp;
      }
      if (++ObligationsSpent > MaxObligations) {
        Why = "proof-obligation limit reached (" +
              std::to_string(MaxObligations) + ")";
        return BlockOutcome::GiveUp;
      }
      Obl &O = Stack.back();
      if (subsumedAt(O.C, O.Level)) {
        Stack.pop_back();
        continue;
      }
      if (O.Level == 0) {
        if (initIntersects(O.C)) {
          CexDepth = Stack.size();
          return BlockOutcome::Cex;
        }
        addBlocked(generalize(O.C, 0), 0);
        Stack.pop_back();
        continue;
      }
      const Transition *Failed = nullptr;
      if (consecutionBlocked(O.C, O.Level - 1, Failed)) {
        addBlocked(generalize(O.C, O.Level), O.Level);
        Stack.pop_back();
        continue;
      }
      // Counterexample to induction: over-approximate the predecessor of
      // O.C through the offending transition and block it one level down.
      std::vector<Lit> PredLits = Failed->Path->Cond;
      appendPostImage(PredLits, O.C, *Failed->Path);
      Cube Pred = project(PredLits);
      if (Pred.Lits.empty()) {
        Why = "predecessor of an obligation cube through " + Failed->Where +
              " has no state-pure constraints to block";
        return BlockOutcome::GiveUp;
      }
      size_t NextLevel = O.Level - 1;
      Stack.push_back(Obl{std::move(Pred), NextLevel});
    }
    return BlockOutcome::Proved;
  }

  /// Pushes clauses forward (a clause unreachable-in-one-step from frame J
  /// also holds at J+1) and reports the first level whose clause set
  /// equals the next level's: that frame is inductive.
  int propagate() {
    for (size_t J = 0; J + 1 < Frames.size(); ++J) {
      std::vector<std::pair<std::string, const Cube *>> Pending;
      for (const auto &[Key, C] : Frames[J])
        if (!Frames[J + 1].count(Key))
          Pending.emplace_back(Key, &C);
      for (const auto &[Key, C] : Pending) {
        const Transition *F = nullptr;
        if (consecutionBlocked(*C, J, F))
          Frames[J + 1].emplace(Key, *C);
      }
      if (J >= 1 && !Frames[J].empty() &&
          Frames[J].size() == Frames[J + 1].size())
        return static_cast<int>(J);
    }
    return -1;
  }

  //===------------------------------------------------------------------===//
  // Obligation scan internals (mirrors verify/prover.cc's discharge)
  //===------------------------------------------------------------------===//

  std::optional<std::vector<Lit>> matchUnder(const SymAction &A,
                                             const ActionPattern &Pat,
                                             const SymBinding &Sigma) {
    SymBinding B = Sigma;
    return matchSymAction(Ctx, A, Pat, B);
  }

  bool scanPath(const std::string &Where, int PathIdx, const SymPath &Path,
                bool IsInit, std::string &Why) {
    if (Opts.Budget && Opts.Budget->expired()) {
      Why = "verification budget exhausted";
      return false;
    }
    const ActionPattern &Trigger = TP.trigger();
    Solver::Scope PathScope(Solv, Path.Cond);
    for (size_t K = 0; K < Path.Emits.size(); ++K) {
      SymBinding Sigma;
      auto MC = matchSymAction(Ctx, Path.Emits[K], Trigger, Sigma);
      if (!MC)
        continue;
      if (!Solv.maybeSatUnder(*MC))
        continue;
      // frameObligation still projects the flat pre-state literal set;
      // the solver works from the asserted stack.
      std::vector<Lit> Assume = Path.Cond;
      Assume.insert(Assume.end(), MC->begin(), MC->end());
      Solver::Scope EmitScope(Solv, *MC);
      if (!dischargeLocal(Where, PathIdx, Path, K, Assume, Sigma, IsInit,
                          Why))
        return false;
    }
    return true;
  }

  bool frameObligation(ProofStep Step, const std::vector<Lit> &Assume,
                       bool IsInit, const std::string &Detail,
                       std::string &Why) {
    if (IsInit)
      return obligationFailed(Step, Detail, Why);
    Cube C = project(Assume);
    if (C.Lits.empty())
      return obligationFailed(
          Step,
          Detail + "; and the pre-state has no state-pure constraints "
                   "for reachability blocking",
          Why);
    Step.Kind = Justify::FrameBlocked;
    Steps.push_back(std::move(Step));
    FrameObls.push_back(FrameObl{Steps.size() - 1, std::move(C)});
    return true;
  }

  bool dischargeLocal(const std::string &Where, int PathIdx,
                      const SymPath &Path, size_t K,
                      const std::vector<Lit> &Assume, const SymBinding &Sigma,
                      bool IsInit, std::string &Why) {
    ProofStep Step;
    Step.Where = Where;
    Step.PathIndex = PathIdx;
    Step.EmitIndex = static_cast<int>(K);
    Step.Binding = Sigma;
    const ActionPattern &Obl = TP.obligation();

    switch (TP.Op) {
    case TraceOp::ImmBefore: {
      if (K > 0) {
        auto MC = matchUnder(Path.Emits[K - 1], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(K - 1);
          Steps.push_back(std::move(Step));
          return true;
        }
      }
      return frameObligation(std::move(Step), Assume, IsInit,
                             "immediately-preceding action does not "
                             "provably match " +
                                 Obl.str(),
                             Why);
    }

    case TraceOp::ImmAfter: {
      if (K + 1 < Path.Emits.size()) {
        auto MC = matchUnder(Path.Emits[K + 1], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(K + 1);
          Steps.push_back(std::move(Step));
          return true;
        }
      }
      return frameObligation(std::move(Step), Assume, IsInit,
                             "immediately-following action does not "
                             "provably match " +
                                 Obl.str(),
                             Why);
    }

    case TraceOp::Ensures: {
      for (size_t J = K + 1; J < Path.Emits.size(); ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(J);
          Steps.push_back(std::move(Step));
          return true;
        }
      }
      return frameObligation(std::move(Step), Assume, IsInit,
                             "no later action in the same handler provably "
                             "matches " +
                                 Obl.str(),
                             Why);
    }

    case TraceOp::Enables: {
      for (size_t J = 0; J < K; ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (MC && Solv.entailsAllUnder(*MC)) {
          Step.Kind = Justify::LocalObligation;
          Step.LocalIndex = static_cast<int>(J);
          Steps.push_back(std::move(Step));
          return true;
        }
      }
      if (Obl.Kind == ActionPattern::Spawn) {
        for (size_t F = 0; F < Path.FoundComps.size(); ++F) {
          SymAction Pseudo;
          Pseudo.Kind = SymAction::Spawn;
          Pseudo.Comp = Path.FoundComps[F];
          auto MC = matchUnder(Pseudo, Obl, Sigma);
          if (MC && Solv.entailsAllUnder(*MC)) {
            Step.Kind = Justify::CompOrigin;
            Step.LocalIndex = static_cast<int>(F);
            Steps.push_back(std::move(Step));
            return true;
          }
        }
      }
      return frameObligation(std::move(Step), Assume, IsInit,
                             "no earlier action provably matches " +
                                 Obl.str(),
                             Why);
    }

    case TraceOp::Disables: {
      for (size_t J = 0; J < K; ++J) {
        auto MC = matchUnder(Path.Emits[J], Obl, Sigma);
        if (!MC)
          continue;
        if (Solv.maybeSatUnder(*MC))
          return frameObligation(
              std::move(Step), Assume, IsInit,
              "an earlier action in the same handler may match the "
              "disabling pattern " +
                  Obl.str(),
              Why);
      }
      if (IsInit) {
        Step.Kind = Justify::NoPriorLocal;
        Steps.push_back(std::move(Step));
        return true;
      }
      if (Obl.Kind == ActionPattern::Spawn &&
          noCompFactCovers(Path, Sigma, Obl)) {
        Step.Kind = Justify::NoCompHistory;
        Steps.push_back(std::move(Step));
        return true;
      }
      return frameObligation(std::move(Step), Assume, IsInit,
                             "no local fact refutes a prior " + Obl.str(),
                             Why);
    }
    }
    return false;
  }

  /// Mirror of the induction prover's failed-lookup axiom.
  bool noCompFactCovers(const SymPath &Path, const SymBinding &Sigma,
                        const ActionPattern &Obl) {
    for (const NoCompFact &Fact : Path.NoComp) {
      if (Fact.TypeName != Obl.Comp.TypeName)
        continue;
      bool Covered = true;
      for (const auto &[Index, Required] : Fact.Constraints) {
        const CompFieldPattern *FP = nullptr;
        for (const CompFieldPattern &F : Obl.Comp.Fields)
          if (F.FieldIndex == Index)
            FP = &F;
        if (!FP) {
          Covered = false;
          break;
        }
        TermRef PatSide = nullptr;
        switch (FP->Pat.Kind) {
        case PatTerm::Lit:
          PatSide = Ctx.lit(FP->Pat.LitVal);
          break;
        case PatTerm::Var: {
          auto It = Sigma.find(FP->Pat.VarName);
          if (It != Sigma.end())
            PatSide = It->second;
          break;
        }
        case PatTerm::Wild:
          break;
        }
        if (!PatSide ||
            !Solv.entailsUnder(Lit(Ctx.eq(PatSide, Required), true))) {
          Covered = false;
          break;
        }
      }
      if (Covered)
        return true;
    }
    return false;
  }

  bool obligationFailed(const ProofStep &Step, const std::string &Detail,
                        std::string &Why) {
    std::ostringstream OS;
    OS << "unproved obligation at " << Step.Where << " path "
       << Step.PathIndex << " emit " << Step.EmitIndex << ": " << Detail;
    Why = OS.str();
    return false;
  }

  TermContext &Ctx;
  Solver &Solv;
  const Program &P;
  const BehAbs &Abs;
  const TraceProperty &TP;
  const ProverOptions &Opts;

  std::vector<Transition> Trans;
  /// Frames[i]: clauses (as the cubes they block) known to hold at every
  /// state reachable in at most i exchanges; Frames[i] ⊇ Frames[i+1].
  /// std::map keyed by the cube's canonical rendering — deterministic
  /// iteration, allocation-order-independent.
  std::vector<std::map<std::string, Cube>> Frames;
  size_t ObligationsSpent = 0;

  static constexpr size_t MaxLevel = 24;
  static constexpr size_t MaxObligations = 4096;
  static constexpr size_t MaxClauseBranches = 4096;
};

/// Are two proof-step sequences structurally identical? (The PDR analogue
/// of the checker's stepsEqual; kept local to avoid exporting it.)
bool pdrStepsEqual(const std::vector<ProofStep> &A,
                   const std::vector<ProofStep> &B, std::string &Why) {
  if (A.size() != B.size()) {
    Why = "step count differs (" + std::to_string(A.size()) + " vs " +
          std::to_string(B.size()) + ")";
    return false;
  }
  for (size_t I = 0; I < A.size(); ++I) {
    const ProofStep &X = A[I];
    const ProofStep &Y = B[I];
    if (X.Where != Y.Where || X.PathIndex != Y.PathIndex ||
        X.EmitIndex != Y.EmitIndex || X.Kind != Y.Kind ||
        X.LocalIndex != Y.LocalIndex || X.InvariantId != Y.InvariantId ||
        X.Binding != Y.Binding) {
      Why = "step " + std::to_string(I) + " differs at " + X.Where;
      return false;
    }
  }
  return true;
}

} // namespace

PdrOutcome provePdrProperty(TermContext &Ctx, Solver &Solv, const Program &P,
                            const BehAbs &Abs, const Property &Prop,
                            const ProverOptions &Opts) {
  assert(Prop.isTrace() && "not a trace property");
  PdrOutcome Out;
  Out.Cert.ProgramName = P.Name;
  Out.Cert.PropertyName = Prop.Name;
  Out.Cert.Kind = traceOpName(Prop.traceProp().Op);
  Out.Cert.Engine = "pdr";

  // PDR's transition relation reads every handler summary, so its verdicts
  // always depend on every handler (like NI and BMC).
  if (Opts.Footprint) {
    Opts.Footprint->Collected = true;
    Opts.Footprint->AllHandlers = true;
  }

  if (Abs.incomplete()) {
    Out.Reason = "behavioral abstraction incomplete (symbolic execution "
                 "limits exceeded)";
    return Out;
  }

  Pdr Engine(Ctx, Solv, P, Abs, Prop.traceProp(), Opts);
  if (!Engine.scanObligations(Out.Reason))
    return Out;
  Out.Cert.Steps = Engine.Steps;

  if (Engine.FrameObls.empty()) {
    // Every obligation closed locally; the empty clause set (invariant
    // "true") is trivially initial and consecutive.
    Out.Proved = true;
    return Out;
  }

  size_t CexDepth = 0;
  std::string CexWhere;
  std::vector<std::vector<Lit>> Clauses;
  switch (Engine.runFrames(Clauses, CexDepth, CexWhere, Out.Reason)) {
  case Pdr::BlockOutcome::Proved:
    Out.Cert.InvClauses = std::move(Clauses);
    Out.Proved = true;
    return Out;
  case Pdr::BlockOutcome::GiveUp:
    return Out;
  case Pdr::BlockOutcome::Cex:
    break;
  }

  // An abstract counterexample: a chain of cubes from the initial states
  // into a bad obligation's pre-state. The abstraction over-approximates
  // (state-pure projections drop payload constraints), so the chain is
  // only believed after the concrete bounded model checker reproduces a
  // violating trace at the corresponding depth.
  BmcOptions BOpts;
  BOpts.MaxDepth = CexDepth + 1;
  BmcResult B = bmcSearch(P, Prop, BOpts);
  if (B.Violated) {
    Out.Refuted = true;
    Out.Reason = B.Explanation;
    Out.Counterexample = std::move(B.Counterexample);
    return Out;
  }
  Out.Reason = "abstract counterexample of length " +
               std::to_string(CexDepth) + " into the obligation at " +
               CexWhere +
               " was not confirmed by bounded concrete search (the "
               "reachability abstraction over-approximates)";
  return Out;
}

bool checkPdrInvariant(TermContext &Ctx, Solver &Solv, const Program &P,
                       const BehAbs &Abs, const Property &Prop,
                       const Certificate &Cert, const ProverOptions &Opts,
                       std::string &Why) {
  if (!Prop.isTrace()) {
    Why = "PDR certificates cover trace properties only";
    return false;
  }
  if (Abs.incomplete()) {
    Why = "behavioral abstraction incomplete";
    return false;
  }
  Pdr Engine(Ctx, Solv, P, Abs, Prop.traceProp(), Opts);
  if (!Engine.scanObligations(Why)) {
    Why = "obligation re-enumeration failed: " + Why;
    return false;
  }
  if (!pdrStepsEqual(Cert.Steps, Engine.Steps, Why))
    return false;
  if (Engine.FrameObls.empty())
    return true; // no frame obligations: any clause set (incl. none) works
  if (Cert.InvClauses.empty()) {
    Why = "certificate carries no invariant clauses but has frame-blocked "
          "obligations";
    return false;
  }
  return Engine.validateInvariant(Cert.InvClauses, Why);
}

} // namespace reflex
