//===- verify/absreplay.cc - Trace inclusion in BehAbs ----------*- C++ -*-===//

#include "verify/absreplay.h"

#include <cassert>
#include <sstream>

namespace reflex {

namespace {

/// A concrete valuation of symbolic terms built up while aligning a
/// symbolic path with a trace segment.
struct Valuation {
  /// Symbol/leaf term -> concrete value (params, call results, config
  /// field symbols). Component terms are bound in Comps.
  std::map<TermRef, Value> Syms;
  /// Component term -> concrete component id.
  std::map<TermRef, int64_t> Comps;
};

class Replayer {
public:
  Replayer(TermContext &Ctx, const Program &P, const BehAbs &Abs,
           const Trace &Tr)
      : Ctx(Ctx), P(P), Abs(Abs), Tr(Tr) {}

  ReplayResult run() {
    ReplayResult R;
    // Current concrete state-variable values.
    for (const StateVarDecl &V : P.StateVars)
      Vars[V.Name] = V.Init;

    size_t Pos = 0;
    // --- Init ---
    bool InitOk = false;
    std::string InitWhy;
    for (const SymPath &Path : Abs.Init.Paths) {
      size_t End = 0;
      std::map<std::string, Value> NewVars;
      if (tryPath(Path, Pos, /*HasExchangeHeader=*/false, End, NewVars,
                  InitWhy)) {
        Pos = End;
        Vars = std::move(NewVars);
        InitOk = true;
        break;
      }
    }
    if (!InitOk) {
      R.Why = "no init path matches the trace prefix: " + InitWhy;
      return R;
    }

    // --- Exchanges ---
    while (Pos < Tr.Actions.size()) {
      if (Tr.Actions[Pos].Kind != Action::Select) {
        R.Why = "exchange must begin with Select at action " +
                std::to_string(Pos);
        return R;
      }
      if (Pos + 1 >= Tr.Actions.size() ||
          Tr.Actions[Pos + 1].Kind != Action::Recv) {
        R.Why = "Select not followed by Recv at action " + std::to_string(Pos);
        return R;
      }
      const ComponentInstance *Sender =
          Tr.findComponent(Tr.Actions[Pos].CompId);
      if (!Sender) {
        R.Why = "Select of unknown component";
        return R;
      }
      const HandlerSummary *S =
          Abs.findSummary(Sender->TypeName, Tr.Actions[Pos + 1].Msg.Name);
      if (!S) {
        R.Why = "no summary for " + Sender->TypeName + "=>" +
                Tr.Actions[Pos + 1].Msg.Name;
        return R;
      }
      bool Matched = false;
      std::string Why;
      for (const SymPath &Path : S->Paths) {
        size_t End = 0;
        std::map<std::string, Value> NewVars;
        if (tryPath(Path, Pos, /*HasExchangeHeader=*/true, End, NewVars,
                    Why)) {
          Pos = End;
          Vars = std::move(NewVars);
          Matched = true;
          break;
        }
      }
      if (!Matched) {
        R.Why = "no path of " + Sender->TypeName + "=>" +
                Tr.Actions[Pos + 1].Msg.Name + " matches at action " +
                std::to_string(Pos) + ": " + Why;
        return R;
      }
      ++R.Exchanges;
    }
    R.Included = true;
    return R;
  }

private:
  /// Attempts to align \p Path with the trace starting at \p Begin.
  /// On success sets \p End one past the consumed segment and \p NewVars
  /// to the post-state valuation.
  bool tryPath(const SymPath &Path, size_t Begin, bool HasExchangeHeader,
               size_t &End, std::map<std::string, Value> &NewVars,
               std::string &Why) {
    (void)HasExchangeHeader;
    Valuation Val;
    // Seed state symbols with the current variable values.
    for (const auto &[Name, V] : Vars) {
      const StateVarDecl *D = P.findStateVar(Name);
      if (D)
        Val.Syms[Ctx.stateSym(Name, D->Type)] = V;
    }

    size_t Pos = Begin;
    for (const SymAction &E : Path.Emits) {
      if (Pos >= Tr.Actions.size()) {
        Why = "trace ends mid-exchange";
        return false;
      }
      const Action &A = Tr.Actions[Pos];
      if (!alignEmission(E, A, Val, Why))
        return false;
      ++Pos;
    }

    // Resolve lookup components that never appeared in an emission by
    // re-running the lookup over the concrete pre-exchange component set
    // (oldest-first, as the evaluator does). Constraint literals then
    // evaluate below.
    for (TermRef C : Path.LookupComps)
      if (!Val.Comps.count(C))
        if (!resolveLookup(C, Path, Val, Begin, Why))
          return false;

    // Path condition literals must evaluate to true.
    for (const Lit &L : Path.Cond) {
      std::optional<Value> V = evalTerm(L.Atom, Val);
      if (!V) {
        Why = "condition not evaluable: " + Ctx.str(L.Atom);
        return false;
      }
      if (V->asBool() != L.Pos) {
        Why = "condition false: " + Ctx.str(L.Atom);
        return false;
      }
    }

    // Failed-lookup facts must hold of the concrete pre-exchange set.
    for (const NoCompFact &Fact : Path.NoComp) {
      for (const ComponentInstance &Cand : liveCompsBefore(Begin)) {
        if (Cand.TypeName != Fact.TypeName)
          continue;
        bool All = true;
        for (const auto &[Index, Term] : Fact.Constraints) {
          std::optional<Value> V = evalTerm(Term, Val);
          if (!V || !(Cand.Config[Index] == *V)) {
            All = false;
            break;
          }
        }
        if (All) {
          Why = "failed-lookup fact refuted by live component";
          return false;
        }
      }
    }

    // Updates produce the post-state.
    NewVars = Vars;
    for (const auto &[Name, Term] : Path.Updates) {
      std::optional<Value> V = evalTerm(Term, Val);
      if (!V) {
        Why = "update not evaluable for '" + Name + "'";
        return false;
      }
      NewVars[Name] = *V;
    }
    End = Pos;
    return true;
  }

  /// The components alive strictly before trace position \p Pos.
  std::vector<ComponentInstance> liveCompsBefore(size_t Pos) {
    std::vector<ComponentInstance> Out;
    std::set<int64_t> Spawned;
    for (size_t I = 0; I < Pos; ++I)
      if (Tr.Actions[I].Kind == Action::Spawn)
        Spawned.insert(Tr.Actions[I].CompId);
    for (const ComponentInstance &C : Tr.Components)
      if (Spawned.count(C.Id))
        Out.push_back(C);
    return Out;
  }

  bool bindComp(TermRef CompTerm, int64_t Id, Valuation &Val,
                std::string &Why) {
    auto [It, Inserted] = Val.Comps.emplace(CompTerm, Id);
    if (!Inserted) {
      if (It->second != Id) {
        Why = "component term bound to two instances";
        return false;
      }
      return true;
    }
    const ComponentInstance *C = Tr.findComponent(Id);
    if (!C || C->TypeName != Ctx.symbolStr(CompTerm->Str)) {
      Why = "component type mismatch";
      return false;
    }
    // Bind the component's config-field terms to the instance's values
    // (for flexible components whose fields are fresh symbols, this also
    // pins those symbols).
    assert(CompTerm->Ops.size() == C->Config.size());
    for (size_t I = 0; I < CompTerm->Ops.size(); ++I) {
      TermRef FieldTerm = CompTerm->Ops[I];
      std::optional<Value> Existing = evalTerm(FieldTerm, Val);
      if (Existing) {
        if (!(*Existing == C->Config[I])) {
          Why = "config field mismatch";
          return false;
        }
      } else if (FieldTerm->Kind == TermKind::SymVar) {
        Val.Syms[FieldTerm] = C->Config[I];
      }
    }
    return true;
  }

  bool alignEmission(const SymAction &E, const Action &A, Valuation &Val,
                     std::string &Why) {
    auto Mismatch = [&](const char *What) {
      Why = std::string("emission mismatch (") + What + ")";
      return false;
    };
    switch (E.Kind) {
    case SymAction::Select:
      if (A.Kind != Action::Select)
        return Mismatch("expected Select");
      return bindComp(E.Comp, A.CompId, Val, Why);
    case SymAction::Recv: {
      if (A.Kind != Action::Recv || A.Msg.Name != E.MsgName ||
          A.Msg.Args.size() != E.Args.size())
        return Mismatch("expected matching Recv");
      if (!bindComp(E.Comp, A.CompId, Val, Why))
        return false;
      for (size_t I = 0; I < E.Args.size(); ++I) {
        // Parameters are fresh symbols: bind them to the payload.
        if (E.Args[I]->Kind == TermKind::SymVar &&
            !Val.Syms.count(E.Args[I]))
          Val.Syms[E.Args[I]] = A.Msg.Args[I];
        else if (auto V = evalTerm(E.Args[I], Val);
                 !V || !(*V == A.Msg.Args[I]))
          return Mismatch("Recv payload");
      }
      return true;
    }
    case SymAction::Send: {
      if (A.Kind != Action::Send || A.Msg.Name != E.MsgName ||
          A.Msg.Args.size() != E.Args.size())
        return Mismatch("expected matching Send");
      if (!bindComp(E.Comp, A.CompId, Val, Why))
        return false;
      for (size_t I = 0; I < E.Args.size(); ++I) {
        std::optional<Value> V = evalTerm(E.Args[I], Val);
        if (!V || !(*V == A.Msg.Args[I]))
          return Mismatch("Send payload");
      }
      return true;
    }
    case SymAction::Spawn:
      if (A.Kind != Action::Spawn)
        return Mismatch("expected Spawn");
      return bindComp(E.Comp, A.CompId, Val, Why);
    case SymAction::Call: {
      if (A.Kind != Action::Call || A.CallFn != E.CallFn)
        return Mismatch("expected matching Call");
      Val.Syms[E.CallResult] = A.CallResult;
      for (size_t I = 0;
           I < E.Args.size() && I < A.CallArgs.size(); ++I) {
        std::optional<Value> V = evalTerm(E.Args[I], Val);
        if (!V || !(*V == A.CallArgs[I]))
          return Mismatch("Call argument");
      }
      return true;
    }
    }
    return false;
  }

  /// Re-runs an unresolved lookup over the concrete pre-exchange set.
  bool resolveLookup(TermRef CompTerm, const SymPath &Path, Valuation &Val,
                     size_t Begin, std::string &Why) {
    // Gather the constraint literals mentioning this component's fields:
    // they have the shape Eq(field, expr).
    std::vector<std::pair<int, TermRef>> Constraints;
    for (const Lit &L : Path.Cond) {
      if (!L.Pos || L.Atom->Kind != TermKind::Eq)
        continue;
      for (int Side = 0; Side < 2; ++Side) {
        TermRef FieldSide = L.Atom->Ops[Side];
        TermRef ExprSide = L.Atom->Ops[1 - Side];
        for (size_t I = 0; I < CompTerm->Ops.size(); ++I)
          if (CompTerm->Ops[I] == FieldSide)
            Constraints.emplace_back(static_cast<int>(I), ExprSide);
      }
    }
    std::string TypeName = Ctx.symbolStr(CompTerm->Str);
    for (const ComponentInstance &Cand : liveCompsBefore(Begin)) {
      if (Cand.TypeName != TypeName)
        continue;
      bool Ok = true;
      for (const auto &[Index, ExprTerm] : Constraints) {
        std::optional<Value> V = evalTerm(ExprTerm, Val);
        if (!V || !(Cand.Config[Index] == *V)) {
          Ok = false;
          break;
        }
      }
      if (Ok)
        return bindComp(CompTerm, Cand.Id, Val, Why);
    }
    Why = "lookup component unresolvable";
    return false;
  }

  std::optional<Value> evalTerm(TermRef T, const Valuation &Val) {
    if (auto L = Ctx.literalValue(T))
      return L;
    switch (T->Kind) {
    case TermKind::SymVar: {
      auto It = Val.Syms.find(T);
      if (It == Val.Syms.end())
        return std::nullopt;
      return It->second;
    }
    case TermKind::Comp: {
      auto It = Val.Comps.find(T);
      if (It == Val.Comps.end())
        return std::nullopt;
      return Value::comp(It->second);
    }
    case TermKind::Eq: {
      auto A = evalTerm(T->Ops[0], Val);
      auto B = evalTerm(T->Ops[1], Val);
      if (!A || !B)
        return std::nullopt;
      return Value::boolean(*A == *B);
    }
    case TermKind::Lt:
    case TermKind::Le: {
      auto A = evalTerm(T->Ops[0], Val);
      auto B = evalTerm(T->Ops[1], Val);
      if (!A || !B)
        return std::nullopt;
      return Value::boolean(T->Kind == TermKind::Lt
                                ? A->asNum() < B->asNum()
                                : A->asNum() <= B->asNum());
    }
    case TermKind::And:
    case TermKind::Or: {
      auto A = evalTerm(T->Ops[0], Val);
      auto B = evalTerm(T->Ops[1], Val);
      if (!A || !B)
        return std::nullopt;
      bool R = T->Kind == TermKind::And ? (A->asBool() && B->asBool())
                                        : (A->asBool() || B->asBool());
      return Value::boolean(R);
    }
    case TermKind::Not: {
      auto A = evalTerm(T->Ops[0], Val);
      if (!A)
        return std::nullopt;
      return Value::boolean(!A->asBool());
    }
    case TermKind::Add:
    case TermKind::Sub: {
      auto A = evalTerm(T->Ops[0], Val);
      auto B = evalTerm(T->Ops[1], Val);
      if (!A || !B)
        return std::nullopt;
      return Value::num(T->Kind == TermKind::Add ? A->asNum() + B->asNum()
                                                 : A->asNum() - B->asNum());
    }
    default:
      return std::nullopt;
    }
  }

  TermContext &Ctx;
  const Program &P;
  const BehAbs &Abs;
  const Trace &Tr;
  std::map<std::string, Value> Vars;
};

} // namespace

ReplayResult replayTrace(TermContext &Ctx, const Program &P,
                         const BehAbs &Abs, const Trace &Tr) {
  return Replayer(Ctx, P, Abs, Tr).run();
}

} // namespace reflex
