//===- verify/incremental.h - Incremental re-verification -------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental re-verification — the paper's stated future work ("Future
/// work can explore incremental verification in order to further reduce
/// the time required for re-verification", §6.4).
///
/// The model matches the paper's edit-verify workflow: the user edits the
/// kernel or its properties and re-runs the automation. This verifier
/// fingerprints the program's *code* (everything except the property
/// declarations) and each property's text:
///
///  * unchanged code + unchanged property  -> the previous verdict is
///    reused (sound: verification depends on nothing else);
///  * changed/new property over unchanged code -> only that property is
///    re-verified, sharing one session (abstraction, solver memo,
///    invariant cache) with the others;
///  * changed code -> everything re-verifies (a trace property can depend
///    on *any* handler through its guard invariants, so no finer sound
///    footprint is attempted).
///
/// Reused results carry their status, original timing, and — for proved
/// properties — their certificate JSON (PropertyResult::CertJson, exported
/// while the originating session was alive). Only the *live* certificate
/// (PropertyResult::Cert, whose terms reference the originating session's
/// term context) is dropped, since that session dies between calls.
///
/// An optional persistent ProofCache (service/proofcache.h) backs the
/// in-memory verdict store: verdicts survive process restarts, and every
/// proved verdict served from disk is first re-validated by the
/// independent certificate checker. The in-memory reuse path is unchanged
/// — the cache only sees properties this instance would re-verify.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_INCREMENTAL_H
#define REFLEX_VERIFY_INCREMENTAL_H

#include "verify/verifier.h"

#include <map>
#include <string>

namespace reflex {

class ProofCache;

class IncrementalVerifier {
public:
  /// \p Cache, when non-null, must outlive the verifier; it persists
  /// verdicts across processes (keyed by code fingerprint + property text
  /// + options, see service/proofcache.h).
  explicit IncrementalVerifier(const VerifyOptions &Opts = {},
                               ProofCache *Cache = nullptr)
      : Opts(Opts), Cache(Cache) {}

  struct Outcome {
    VerificationReport Report;
    /// Results served from the previous version's verdicts (in-memory).
    unsigned Reused = 0;
    /// Properties verified in this call (including those answered by the
    /// persistent cache).
    unsigned Reverified = 0;
    /// Of the Reverified, how many were served by the persistent proof
    /// cache (proved ones re-validated by the checker).
    unsigned CacheHits = 0;
  };

  /// Verifies \p P, reusing verdicts from the previous call where sound.
  Outcome verify(const Program &P);

private:
  VerifyOptions Opts;
  ProofCache *Cache;
  std::string LastCodeFingerprint;
  /// Property text -> last verdict (live certificate stripped; the
  /// certificate JSON is retained).
  std::map<std::string, PropertyResult> Verdicts;
};

/// The code fingerprint: the printed program with the property section
/// removed. Two programs with equal fingerprints have identical kernels.
std::string codeFingerprint(const Program &P);

} // namespace reflex

#endif // REFLEX_VERIFY_INCREMENTAL_H
