//===- verify/incremental.h - Incremental re-verification -------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental re-verification — the paper's stated future work ("Future
/// work can explore incremental verification in order to further reduce
/// the time required for re-verification", §6.4).
///
/// The model matches the paper's edit-verify workflow: the user edits the
/// kernel or its properties and re-runs the automation. This verifier
/// fingerprints the program per handler (verify/footprint.h) and each
/// property's text, and records the *proof footprint* — the set of
/// handlers the proof search consulted — with every verdict:
///
///  * unchanged code + unchanged property -> the previous verdict is
///    reused (sound: verification depends on nothing else);
///  * changed/new property over unchanged code -> only that property is
///    re-verified, sharing one session (abstraction, solver memo,
///    invariant cache) with the others;
///  * changed handler bodies -> a verdict survives when the edit is
///    provably irrelevant to its proof: every handler's *interface*
///    (messages sent, component types spawned, state variables assigned)
///    is preserved, and for every handler in the verdict's footprint the
///    rendered summary is unchanged on everything the proof consulted —
///    the whole summary, or, at path granularity, every path's emit
///    structure plus the full content of just the paths the proof
///    entered — see footprintReusable and the soundness argument in
///    verify/footprint.h. Anything else (declaration changes, interface
///    changes, footprint overlap, a structural path change, a verdict
///    without a collected footprint) re-verifies from scratch.
///
/// Reused results carry their status, original timing, and — for proved
/// properties — their certificate JSON (PropertyResult::CertJson, exported
/// while the originating session was alive). Only the *live* certificate
/// (PropertyResult::Cert, whose terms reference the originating session's
/// term context) is dropped, since that session dies between calls.
///
/// An optional persistent ProofCache (service/proofcache.h) backs the
/// in-memory verdict store: verdicts survive process restarts and — since
/// the cache key covers only declarations, with per-handler validation at
/// lookup — unrelated handler edits. Every proved verdict served from
/// disk is first re-validated by the independent certificate checker.
///
/// The audit mode (setAuditReuse, the CLI's --audit-footprints) re-proves
/// every verdict that was served without a fresh verification this call —
/// in-memory reuse and cache hits alike — in a fresh session and requires
/// status, reason, and certificate JSON to agree byte-for-byte. It turns
/// the footprint soundness argument into a dynamically checked claim.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_INCREMENTAL_H
#define REFLEX_VERIFY_INCREMENTAL_H

#include "verify/footprint.h"
#include "verify/verifier.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace reflex {

class ProofCache;
struct SchedulerOptions;

class IncrementalVerifier {
public:
  /// \p Cache, when non-null, must outlive the verifier; it persists
  /// verdicts across processes (keyed by declaration fingerprint +
  /// property text + options, validated per handler at lookup — see
  /// service/proofcache.h).
  explicit IncrementalVerifier(const VerifyOptions &Opts = {},
                               ProofCache *Cache = nullptr);
  ~IncrementalVerifier();

  /// Routes every (re)verification through the parallel scheduler
  /// (service/scheduler.h) instead of a private sequential session: the
  /// properties needing verification after an edit are submitted as one
  /// verifyPropertySubset batch, so they share a single frozen
  /// abstraction, the sharded cross-worker cache tiers, and — when \p S
  /// carries a SchedulerOptions::Share — any abstraction the session
  /// owner kept warm from previous calls. \p S.Verify and \p S.Cache are
  /// overwritten with this verifier's options and cache (the determinism
  /// contract keys verdicts on them). Verdicts are byte-identical to the
  /// sequential path for any worker count.
  void setScheduler(const SchedulerOptions &S);

  /// Audit mode: after serving, re-prove every reused verdict from
  /// scratch and record mismatches in Outcome (Audited / AuditFailures /
  /// AuditErrors). Expensive by design — it exists to *check* the
  /// incremental machinery, not to be fast.
  void setAuditReuse(bool On) { AuditReuse = On; }

  /// Footprint reuse granularity (default: path-granular). Off reproduces
  /// the handler-level rule — any rendered-summary change to a footprint
  /// key re-verifies — and exists for baseline measurement
  /// (bench_incremental's edit_one_branch gate).
  void setPathGranularity(bool On) {
    Granularity = On ? FootprintGranularity::Path : FootprintGranularity::Handler;
  }

  struct Outcome {
    VerificationReport Report;
    /// Results served from the previous version's verdicts (in-memory).
    unsigned Reused = 0;
    /// Of the Reused, how many survived a handler edit *this call* via
    /// footprint disjointness (zero when the code did not change).
    unsigned FootprintReused = 0;
    /// Properties verified in this call (including those answered by the
    /// persistent cache).
    unsigned Reverified = 0;
    /// Of the Reverified, how many were served by the persistent proof
    /// cache (proved ones re-validated by the checker).
    unsigned CacheHits = 0;
    /// Audit mode only: verdicts re-proved from scratch, and how many of
    /// those disagreed with what was served (always zero unless the
    /// incremental machinery is broken).
    unsigned Audited = 0;
    unsigned AuditFailures = 0;
    std::vector<std::string> AuditErrors;
  };

  /// Verifies \p P, reusing verdicts from the previous call where sound.
  Outcome verify(const Program &P);

  /// Primes the verdict store as if verify(\p P) had just returned
  /// \p Verdicts (keyed by property text, live certificates already
  /// stripped). Used by daemon crash recovery to rebuild a session's
  /// warm state from the journal — after each verdict has been
  /// re-validated by the certificate checker; this verifier trusts its
  /// caller exactly as far as it trusts its own previous call.
  void seedVerdicts(const Program &P,
                    std::map<std::string, PropertyResult> Verdicts);

private:
  VerifyOptions Opts;
  ProofCache *Cache;
  /// When set, verification runs as scheduler batches (see setScheduler).
  std::unique_ptr<SchedulerOptions> Sched;
  bool AuditReuse = false;
  FootprintGranularity Granularity = FootprintGranularity::Path;
  bool HaveLast = false;
  ProgramFingerprints LastFp;
  /// Rendered path fingerprints of the program LastFp describes, computed
  /// from its built abstraction whenever the program changes. The "old"
  /// side of every path-granular reuse decision; empty when the last
  /// build ran out of budget (reuse then conservatively falls back).
  PathFingerprints LastPathFp;
  /// Property text -> last verdict (live certificate stripped; the
  /// certificate JSON is retained). Each verdict carries its footprint,
  /// which is what decides survival across handler edits.
  std::map<std::string, PropertyResult> Verdicts;
};

/// The code fingerprint: the printed program with the property section
/// removed. Two programs with equal fingerprints have identical kernels.
/// (The incremental verifier itself uses the finer ProgramFingerprints;
/// this whole-kernel digest remains for callers that only need "did any
/// code change at all".)
std::string codeFingerprint(const Program &P);

} // namespace reflex

#endif // REFLEX_VERIFY_INCREMENTAL_H
