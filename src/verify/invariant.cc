//===- verify/invariant.cc - Guard invariants -------------------*- C++ -*-===//

#include "verify/invariant.h"

#include <algorithm>
#include <sstream>

namespace reflex {

bool isGuardTerm(TermRef T) {
  switch (T->Kind) {
  case TermKind::SymVar:
    return T->Tag == SymTag::State || T->Tag == SymTag::PatVar;
  case TermKind::Comp:
    // State variables are never component-typed, so a component term in a
    // guard could not be re-evaluated at other program points.
    return false;
  default:
    for (TermRef Op : T->Ops)
      if (!isGuardTerm(Op))
        return false;
    return true;
  }
}

void sortLitsByRender(const TermContext &Ctx, std::vector<Lit> &Lits) {
  std::vector<std::pair<std::string, Lit>> Keyed;
  Keyed.reserve(Lits.size());
  for (const Lit &L : Lits)
    Keyed.emplace_back(Ctx.str(L.Atom), L);
  std::sort(Keyed.begin(), Keyed.end(),
            [](const std::pair<std::string, Lit> &A,
               const std::pair<std::string, Lit> &B) {
              if (A.first != B.first)
                return A.first < B.first;
              return A.second.Pos < B.second.Pos;
            });
  for (size_t I = 0; I < Keyed.size(); ++I)
    Lits[I] = Keyed[I].second;
}

std::string GuardInvariant::cacheKey(const TermContext &Ctx) const {
  std::ostringstream OS;
  OS << (Forbids ? "forbid|" : "require|") << Action.str() << "|";
  std::vector<std::string> Lits;
  for (const Lit &L : Guard)
    Lits.push_back((L.Pos ? "" : "!") + Ctx.str(L.Atom));
  std::sort(Lits.begin(), Lits.end());
  for (const std::string &S : Lits)
    OS << S << "&";
  return OS.str();
}

GuardInvariant
synthesizeGuard(TermContext &Ctx, const std::vector<Lit> &Assume,
                const SymBinding &Sigma, const ActionPattern &Action,
                const std::map<std::string, BaseType> &VarTypes,
                bool Forbids) {
  GuardInvariant Inv;
  Inv.Forbids = Forbids;
  Inv.Action = Action;
  Inv.VarTypes = VarTypes;

  // Generalization map: trigger-bound term -> pattern symbol.
  std::unordered_map<TermRef, TermRef> Gen;
  for (const auto &[Var, Term] : Sigma) {
    auto TyIt = VarTypes.find(Var);
    if (TyIt == VarTypes.end())
      continue;
    Gen.emplace(Term, Ctx.patSym(Var, TyIt->second));
  }

  std::set<std::pair<TermRef, bool>> Seen;
  for (const Lit &L : Assume) {
    TermRef T = Ctx.substitute(L.Atom, Gen);
    if (!isGuardTerm(T))
      continue;
    if (T->Kind == TermKind::BoolLit)
      continue; // trivial
    if (Seen.insert({T, L.Pos}).second)
      Inv.Guard.emplace_back(T, L.Pos);
  }
  // Canonical order: guards synthesized from different trigger sites must
  // compare (and cache) identically — and the order must survive term-Id
  // drift (see sortLitsByRender).
  sortLitsByRender(Ctx, Inv.Guard);
  return Inv;
}

SymBinding patSymBinding(TermContext &Ctx, const GuardInvariant &Inv) {
  SymBinding B;
  for (const auto &[Var, Ty] : Inv.VarTypes)
    B.emplace(Var, Ctx.patSym(Var, Ty));
  return B;
}

namespace {
void collectStateSyms(TermRef T, const TermContext &Ctx,
                      std::set<std::string> &Out) {
  if (T->Kind == TermKind::SymVar && T->Tag == SymTag::State)
    Out.insert(Ctx.symbolStr(T->Str));
  for (TermRef Op : T->Ops)
    collectStateSyms(Op, Ctx, Out);
}
} // namespace

void collectGuardVars(const std::vector<Lit> &Lits, const TermContext &Ctx,
                      std::set<std::string> &Out) {
  for (const Lit &L : Lits)
    collectStateSyms(L.Atom, Ctx, Out);
}

} // namespace reflex
