//===- verify/footprint.h - Proof footprints and fingerprints ---*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edit-localized incremental re-verification (the paper's stated future
/// work, §6.4) rests on two artifacts defined here:
///
///  * The **proof footprint** of a verdict: the set of handler keys
///    ("CompType=>MsgName") whose summaries the proof search symbolically
///    processed — in the property's own induction, in every guard-
///    invariant induction it ran (successful *and* failed attempts: a
///    failed attempt steers the search, so its dependencies count), and
///    transitively through every invariant-cache entry it adopted.
///
///  * The **per-handler fingerprints** of a program: a body fingerprint
///    (SHA-256 of the canonical-printed handler) and an *interface*
///    fingerprint (SHA-256 of the handler's sorted sent-message,
///    spawned-type, and assigned-variable sets). The interface sets are
///    exactly what the prover's syntactic-skip predicates (summaryMayEmit
///    / summaryMayAssign) consult, which is the only way a proof depends
///    on a handler it never symbolically processed.
///
/// Soundness argument (docs/INCREMENTAL.md has the long form): the prover
/// is deterministic, and its control flow depends on a handler H only
/// through (a) H's summary, when H is symbolically processed — recorded
/// in the footprint — or (b) the syntactic-skip predicates, which factor
/// through H's interface sets. Hence if an edit changes only handlers
/// outside a verdict's footprint and preserves every changed handler's
/// interface fingerprint (and leaves declarations, init, property text,
/// and options untouched), the entire proof search replays byte-for-byte
/// and the previous verdict — certificate included — is still exact.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_FOOTPRINT_H
#define REFLEX_VERIFY_FOOTPRINT_H

#include "ast/program.h"

#include <map>
#include <set>
#include <string>

namespace reflex {

/// The handler key used by footprints and fingerprints (matches the
/// certificate's ProofStep::Where spelling for handler cases).
std::string handlerKey(const std::string &CompType, const std::string &MsgName);
std::string handlerKey(const Handler &H);

/// The set of handlers a proof consulted. Collected by the prover for
/// trace properties; NI proofs and BMC-assisted verdicts are marked
/// AllHandlers (they inspect every handler body by construction).
struct ProofFootprint {
  /// False when no footprint was recorded (legacy cache entries, budget
  /// statuses): reuse must fall back to full re-verification.
  bool Collected = false;
  /// The verdict depends on every handler (NI label analysis scans all
  /// bodies; BMC explores concrete program semantics).
  bool AllHandlers = false;
  /// Handler keys symbolically processed (empty and meaningless when
  /// AllHandlers is set).
  std::set<std::string> Handlers;

  void merge(const ProofFootprint &O) {
    Collected = Collected || O.Collected;
    AllHandlers = AllHandlers || O.AllHandlers;
    Handlers.insert(O.Handlers.begin(), O.Handlers.end());
  }
};

/// Fingerprints of one declared handler.
struct HandlerFingerprint {
  /// SHA-256 of the canonical-printed handler (header, params, body).
  std::string BodyFp;
  /// SHA-256 of the handler's interface sets: sorted sent messages,
  /// spawned component types, assigned state variables — everything the
  /// syntactic-skip predicates can observe about the body.
  std::string IfaceFp;
};

/// Per-handler fingerprints of a whole program, plus the declaration
/// fingerprint everything else hangs off.
struct ProgramFingerprints {
  /// SHA-256 of the printed program *minus* handlers and properties:
  /// program name, component types, messages, state variables, init. Any
  /// change here invalidates everything (shared state/config semantics).
  std::string DeclFp;
  /// Declared handlers only (BehAbs default summaries for undeclared
  /// pairs are functions of the declarations alone).
  std::map<std::string, HandlerFingerprint> Handlers;
  /// SHA-256 over all (key, BodyFp) pairs — a whole-code digest used to
  /// memoize work that depends on every handler body.
  std::string HandlersFp;

  static ProgramFingerprints compute(const Program &P);
};

/// The handler-level difference between two fingerprint maps.
struct FingerprintDelta {
  /// Keys whose body fingerprint differs, plus keys present on only one
  /// side (a declared handler appeared or disappeared).
  std::set<std::string> Changed;
  /// True when any changed key's *interface* fingerprint differs (or the
  /// key was added/removed): syntactic-skip decisions anywhere in the
  /// program may flip, so no footprint-based reuse is sound.
  bool IfaceChanged = false;

  bool empty() const { return Changed.empty(); }
};

FingerprintDelta
fingerprintDelta(const std::map<std::string, HandlerFingerprint> &Old,
                 const std::map<std::string, HandlerFingerprint> &New);

/// Is a verdict with footprint \p FP still exact after an edit with
/// handler delta \p D (declarations, property text, and options already
/// known unchanged)? True when nothing changed, or when the footprint was
/// collected, is not AllHandlers, no interface fingerprint moved, and the
/// changed set is disjoint from the footprint.
bool footprintReusable(const ProofFootprint &FP, const FingerprintDelta &D);

} // namespace reflex

#endif // REFLEX_VERIFY_FOOTPRINT_H
