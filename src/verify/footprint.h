//===- verify/footprint.h - Proof footprints and fingerprints ---*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edit-localized incremental re-verification (the paper's stated future
/// work, §6.4) rests on two artifacts defined here:
///
///  * The **proof footprint** of a verdict: per handler key
///    ("CompType=>MsgName"), *how* the proof search consulted that
///    handler's summary. A handler consulted by an invariant induction
///    contributes every path (the induction walks all of them); a handler
///    consulted only by the property's own per-path obligation scan
///    contributes exactly the paths the scan *entered* — identified by
///    stable structural path ids (SymPath::PathId). Footprints still
///    accumulate across every guard-invariant induction attempted
///    (successful *and* failed: a failed attempt steers the search) and
///    transitively through every invariant-cache entry adopted.
///
///  * The **fingerprints** of a program at two granularities. Per declared
///    handler, a printed-source body fingerprint and an *interface*
///    fingerprint (sorted sent-message / spawned-type / assigned-variable
///    sets — exactly what the prover's syntactic-skip predicates consult).
///    And per summary of the built abstraction, a rendered **path
///    fingerprint tree** (PathFingerprints): one fingerprint per symbolic
///    path over the path's rendered condition/emits/updates/facts, plus a
///    whole-summary digest. Path fingerprints hash term *renders* (which
///    embed fresh-symbol serials), so they move whenever anything the
///    prover could observe about the summary moves — including serial
///    drift caused by allocation-count changes in earlier-summarized
///    handlers, which printed-source fingerprints cannot see.
///
/// Soundness argument (docs/INCREMENTAL.md has the long form): the prover
/// is deterministic, and its control flow depends on a handler H only
/// through (a) H's summary where processed — and then only through the
/// paths the obligation scan entered plus every path's emit structure,
/// unless an invariant induction walked H, in which case through every
/// path — or (b) the syntactic-skip predicates, which factor through H's
/// interface sets. footprintReusable checks exactly these channels
/// against the *rendered* summaries of the old and new program, so a
/// reuse means the entire proof search replays byte-for-byte and the
/// stored verdict — certificate included — is still exact.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_FOOTPRINT_H
#define REFLEX_VERIFY_FOOTPRINT_H

#include "ast/program.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace reflex {

class TermContext;
struct BehAbs;

/// The handler key used by footprints and fingerprints (matches the
/// certificate's ProofStep::Where spelling for handler cases).
std::string handlerKey(const std::string &CompType, const std::string &MsgName);
std::string handlerKey(const Handler &H);

/// How one handler's summary was consulted by a proof.
struct HandlerFootprint {
  /// The proof walked every path of the summary (any invariant induction
  /// does; also the conservative decode of pre-path-granularity data).
  bool AllPaths = false;
  /// Path ids the property's obligation scan entered (meaningless when
  /// AllPaths). A key can legitimately have an empty Entered set: the
  /// scan processed the summary but no path's emits matched the trigger —
  /// the verdict then depends only on every path's emit structure.
  std::set<std::string> Entered;

  void merge(const HandlerFootprint &O) {
    AllPaths = AllPaths || O.AllPaths;
    if (AllPaths)
      Entered.clear();
    else
      Entered.insert(O.Entered.begin(), O.Entered.end());
  }
};

/// The handlers a proof consulted, and at what path granularity. NI
/// proofs and BMC-assisted verdicts are marked AllHandlers (they inspect
/// every handler body by construction).
struct ProofFootprint {
  /// False when no footprint was recorded (legacy cache entries, budget
  /// statuses): reuse must fall back to full re-verification.
  bool Collected = false;
  /// The verdict depends on every handler (NI label analysis scans all
  /// bodies; BMC explores concrete program semantics).
  bool AllHandlers = false;
  /// Handler keys consulted (empty and meaningless when AllHandlers).
  std::map<std::string, HandlerFootprint> Handlers;

  void merge(const ProofFootprint &O) {
    Collected = Collected || O.Collected;
    AllHandlers = AllHandlers || O.AllHandlers;
    for (const auto &[Key, HF] : O.Handlers)
      Handlers[Key].merge(HF);
  }

  /// Marks \p Key as consulted on every path.
  void noteAllPaths(const std::string &Key) { Handlers[Key].AllPaths = true; }

  /// The set of handler keys (path granularity erased) — what the
  /// footprint-aware cache GC and diagnostics enumerate.
  std::set<std::string> handlerKeys() const {
    std::set<std::string> Keys;
    for (const auto &[Key, HF] : Handlers) {
      (void)HF;
      Keys.insert(Key);
    }
    return Keys;
  }
};

/// Wire encoding of one footprint entry, used everywhere footprints are
/// persisted or transported as flat strings (cache entries, certificates,
/// the daemon journal and protocol): a bare "key" means AllPaths; a
/// "key@id1,id2" suffix lists the entered path ids ("key@" = processed,
/// nothing entered). '@' cannot occur in a handler key ("CompType=>Msg"),
/// so the encoding is unambiguous, and a pre-path-granularity (v2) bare
/// key conservatively decodes as AllPaths.
std::string encodeFootprintEntry(const std::string &Key,
                                 const HandlerFootprint &HF);
std::pair<std::string, HandlerFootprint>
decodeFootprintEntry(const std::string &Encoded);
std::vector<std::string>
encodeFootprintHandlers(const std::map<std::string, HandlerFootprint> &H);
std::map<std::string, HandlerFootprint>
decodeFootprintHandlers(const std::vector<std::string> &Encoded);

/// Fingerprints of one declared handler (printed-source granularity).
struct HandlerFingerprint {
  /// SHA-256 of the canonical-printed handler (header, params, body).
  std::string BodyFp;
  /// SHA-256 of the handler's interface sets: sorted sent messages,
  /// spawned component types, assigned state variables — everything the
  /// syntactic-skip predicates can observe about the body.
  std::string IfaceFp;
};

/// Per-handler fingerprints of a whole program, plus the declaration
/// fingerprint everything else hangs off.
struct ProgramFingerprints {
  /// SHA-256 of the printed program *minus* handlers and properties:
  /// program name, component types, messages, state variables, init. Any
  /// change here invalidates everything (shared state/config semantics).
  std::string DeclFp;
  /// Declared handlers only (BehAbs default summaries for undeclared
  /// pairs are functions of the declarations alone).
  std::map<std::string, HandlerFingerprint> Handlers;
  /// SHA-256 over all (key, BodyFp) pairs — a whole-code digest used to
  /// memoize work that depends on every handler body.
  std::string HandlersFp;

  static ProgramFingerprints compute(const Program &P);
};

/// Fingerprint of one symbolic path of a summary, over term *renders*.
struct PathFingerprint {
  /// Structural arm-tag id (SymPath::PathId).
  std::string Id;
  /// SHA-256 over the rendered emit sequence (symActionStr of every
  /// emitted action, Select/Recv included). The obligation scan's
  /// entered/not-entered decision for a path factors through exactly
  /// this: pattern matching observes only the emits.
  std::string EmitFp;
  /// SHA-256 over everything the prover can observe about the path:
  /// id, emits, rendered condition literals, updates, no-component
  /// facts, found/looked-up components.
  std::string FullFp;
};

/// Fingerprint of one handler summary of the built abstraction.
struct SummaryFingerprint {
  /// SHA-256 folding the sender/param renders, completeness, and every
  /// path's (Id, FullFp) — equal digests mean the rendered summaries are
  /// indistinguishable to the prover.
  std::string SummaryFp;
  /// Symbolic-execution overflow: the summary is truncated, so per-path
  /// comparison is meaningless and reuse must fall back.
  bool Incomplete = false;
  /// In summary order (deterministic: execution order of the builder).
  std::vector<PathFingerprint> Paths;
};

/// Summary fingerprints for every (component type, message type) cell of
/// the abstraction grid, keyed by handlerKey.
using PathFingerprints = std::map<std::string, SummaryFingerprint>;

PathFingerprints computePathFingerprints(const TermContext &Ctx,
                                         const BehAbs &Abs);

/// SHA-256 over all (key, SummaryFp) pairs — pins the rendered
/// abstraction the way HandlersFp pins the printed bodies.
std::string pathFingerprintsDigest(const PathFingerprints &PF);

/// The handler-level difference between two fingerprint maps.
struct FingerprintDelta {
  /// Keys whose body fingerprint differs, plus keys present on only one
  /// side (a declared handler appeared or disappeared).
  std::set<std::string> Changed;
  /// True when any changed key's *interface* fingerprint differs (or the
  /// key was added/removed): syntactic-skip decisions anywhere in the
  /// program may flip, so no footprint-based reuse is sound.
  bool IfaceChanged = false;

  bool empty() const { return Changed.empty(); }
};

FingerprintDelta
fingerprintDelta(const std::map<std::string, HandlerFingerprint> &Old,
                 const std::map<std::string, HandlerFingerprint> &New);

/// Reuse granularity: Handler reproduces the pre-path behavior (any
/// rendered-summary change to a footprint key falls back) and exists for
/// baseline measurement; Path additionally reuses verdicts whose
/// footprint keys changed only on paths the proof never entered.
enum class FootprintGranularity { Handler, Path };

/// Is a verdict with footprint \p FP still exact after an edit with
/// handler delta \p D (declarations, property text, and options already
/// known unchanged), given the rendered summary fingerprints of the old
/// (\p OldPaths) and new (\p NewPaths) program? True when nothing
/// changed syntactically, or when the footprint was collected, is not
/// AllHandlers, no interface fingerprint moved, and for every footprint
/// key the rendered summaries agree on everything the proof consulted:
/// the whole summary digest, or — at Path granularity, for complete
/// summaries with positionally identical path ids — every path's emit
/// structure plus the full fingerprint of every path the proof entered
/// (every path, for AllPaths keys).
bool footprintReusable(const ProofFootprint &FP, const FingerprintDelta &D,
                       const PathFingerprints &OldPaths,
                       const PathFingerprints &NewPaths,
                       FootprintGranularity G = FootprintGranularity::Path);

} // namespace reflex

#endif // REFLEX_VERIFY_FOOTPRINT_H
