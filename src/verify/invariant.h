//===- verify/invariant.h - Guard invariants --------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auxiliary-invariant machinery at the heart of the paper's proof
/// automation (§5.1): when a trigger's history obligation cannot be
/// discharged locally, the tactics "prove that the relevant branch
/// conditions cannot be satisfied without also satisfying the obligations
/// required by the given property". Concretely, the prover synthesizes a
/// candidate invariant of the form
///
///     Guard(state vars, pattern vars)  ⇒  [∃ | ∄] action matching A in tr
///
/// where Guard is the subset of the current assumption set (path condition
/// + trigger match condition) that survives *generalization*: trigger-bound
/// terms are replaced by pattern-variable symbols, and only literals whose
/// support is state symbols + pattern symbols are kept. The candidate is
/// then proved by its own induction over BehAbs — the paper's "second
/// induction".
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_INVARIANT_H
#define REFLEX_VERIFY_INVARIANT_H

#include "ast/program.h"
#include "verify/certificate.h"
#include "verify/symstate.h"

#include <optional>
#include <string>

namespace reflex {

/// A candidate guard invariant (statement only; its proof lives in an
/// InvariantRecord).
struct GuardInvariant {
  bool Forbids = false;
  std::vector<Lit> Guard;
  ActionPattern Action;
  std::map<std::string, BaseType> VarTypes;

  /// Canonical key for the invariant-proof cache (the §6.4 "saving
  /// subproofs at key cut points" optimization).
  std::string cacheKey(const TermContext &Ctx) const;
};

/// True if \p T only mentions canonical state symbols, pattern-variable
/// symbols, and literals (i.e. it can appear in an invariant guard).
bool isGuardTerm(TermRef T);

/// Sorts literals by (rendered atom, polarity). Guard orders must be a
/// function of the terms alone: hash-consed term Ids record *first
/// allocation*, so sorting by Id would let an edit elsewhere in the
/// program (which shifts where a shared term is first built) reorder an
/// untouched proof's guard — breaking byte-identical footprint reuse.
void sortLitsByRender(const TermContext &Ctx, std::vector<Lit> &Lits);

/// Synthesizes the candidate guard for obligation pattern \p Action at an
/// obligation with assumptions \p Assume and trigger binding \p Sigma:
/// generalizes σ-bound terms to pattern symbols and keeps the guard-safe
/// literals. \p VarTypes gives each pattern variable's base type.
GuardInvariant
synthesizeGuard(TermContext &Ctx, const std::vector<Lit> &Assume,
                const SymBinding &Sigma, const ActionPattern &Action,
                const std::map<std::string, BaseType> &VarTypes, bool Forbids);

/// The binding that instantiates an invariant's pattern variables with
/// their canonical pattern symbols (used when proving the invariant).
SymBinding patSymBinding(TermContext &Ctx, const GuardInvariant &Inv);

/// Collects the names of the state variables occurring in \p Lits
/// (their canonical symbols), i.e. the variables whose reassignment can
/// disturb a guard.
void collectGuardVars(const std::vector<Lit> &Lits,
                      const TermContext &Ctx, std::set<std::string> &Out);

} // namespace reflex

#endif // REFLEX_VERIFY_INVARIANT_H
