//===- verify/symstate.h - Symbolic states, paths, summaries ----*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data the behavioral abstraction is made of. Because Reflex handlers
/// are loop-free (the central LAC restriction, §3.3), each handler can be
/// exhaustively symbolically evaluated into a finite set of *paths*, each
/// carrying:
///
///  * a path condition (conjunction of literals over the canonical
///    pre-state symbols, the message parameters, the sender's config
///    fields, and fresh symbols for call results),
///  * the ordered list of emitted actions (Select, Recv, then the path's
///    Sends/Spawns/Calls — exactly the trace suffix §5.1 reasons about),
///  * the state-variable updates as terms over the pre-state symbols, and
///  * component-set facts learned from lookup (a failed lookup witnesses
///    that *no* component of the type satisfies the constraints, which is
///    how uniqueness properties like "Tab processes have unique IDs" are
///    proved).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_SYMSTATE_H
#define REFLEX_VERIFY_SYMSTATE_H

#include "sym/term.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reflex {

/// A symbolically emitted action.
struct SymAction {
  enum SymActionKind : uint8_t { Select, Recv, Send, Spawn, Call };

  SymActionKind Kind = Select;
  TermRef Comp = nullptr;        // Select/Recv/Send/Spawn: the peer component
  std::string MsgName;           // Recv/Send
  std::vector<TermRef> Args;     // Recv/Send payload; Call arguments
  std::string CallFn;            // Call
  TermRef CallResult = nullptr;  // Call: the fresh result symbol
};

/// A universal negative component-set fact from a failed lookup: at the
/// pre-state of this handler, no component of type TypeName satisfies all
/// field constraints.
struct NoCompFact {
  std::string TypeName;
  /// (config field index, required term) pairs.
  std::vector<std::pair<int, TermRef>> Constraints;
};

/// One symbolic execution path through a handler (or through init).
struct SymPath {
  /// Stable structural id of the branch-arm chain this path took: a
  /// "."-joined sequence of arm tags in source order — "t"/"e" for an If's
  /// then/else arm, "f"/"m" for a Lookup's found/missing arm — or "r" for
  /// the straight-line path through a branch-free body. The id is a
  /// function of AST positions only (never byte offsets or term serials),
  /// so an edit inside one arm leaves every other arm's id unchanged.
  /// Multiple DNF disjuncts of the same arm share one id.
  std::string PathId;
  std::vector<Lit> Cond;
  std::vector<SymAction> Emits;
  /// State variable -> post-state term (absent means unchanged).
  std::map<std::string, TermRef> Updates;
  /// Facts from failed lookups (hold at the pre-state).
  std::vector<NoCompFact> NoComp;
  /// Components bound by successful lookups that provably pre-date this
  /// handler (FlexPre only — used by the component-origin axiom: they were
  /// spawned strictly earlier, witnessed by a Spawn action in the trace).
  std::vector<TermRef> FoundComps;
  /// All components bound by lookups on this path (FlexPre and FlexAny) —
  /// the non-interference prover must vet every lookup a high handler
  /// performs.
  std::vector<TermRef> LookupComps;
};

/// The symbolic summary of one (component type, message type) exchange
/// case of the event loop. Covers declared handlers and the implicit
/// default handler (which emits only Select and Recv).
struct HandlerSummary {
  std::string CompType;
  std::string MsgName;
  bool IsDefault = false;
  TermRef SenderComp = nullptr;    // FlexPre comp term with fresh fields
  std::vector<TermRef> Params;     // fresh symbols, one per payload value
  std::vector<SymPath> Paths;
  /// DNF overflow or other symbolic-evaluation failure: the prover must
  /// answer Unknown for any property whose proof needs this handler.
  bool Incomplete = false;
};

/// The symbolic summary of the init section. Init paths' conditions are
/// over fresh symbols only (no pre-state: init runs first).
struct InitSummary {
  std::vector<SymPath> Paths;
  /// Component globals: name -> InitRigid comp term (same in all paths;
  /// branch-dependent spawns are locals by validation).
  std::map<std::string, TermRef> CompGlobals;
  bool Incomplete = false;
};

//===----------------------------------------------------------------------===
// Symbolic pattern matching
//===----------------------------------------------------------------------===

/// A substitution of pattern variables by terms (the symbolic counterpart
/// of trace/pattern.h's Binding).
using SymBinding = std::map<std::string, TermRef>;

/// Attempts to match the emitted action \p A against pattern \p Pat,
/// extending \p B. Returns:
///  * std::nullopt — structurally impossible (kind/type/message mismatch,
///    or a required equality folds to false);
///  * otherwise the *match condition*: literals that must hold for the
///    action to match. The caller decides whether to check them for
///    satisfiability ("could this match?") or entailment ("must this
///    match?").
/// Unbound variables bind to the matched term (adding no condition);
/// bound variables contribute equality literals.
std::optional<std::vector<Lit>> matchSymAction(TermContext &Ctx,
                                               const SymAction &A,
                                               const struct ActionPattern &Pat,
                                               SymBinding &B);

/// Infers the base type of every variable occurring in \p Pat from the
/// program's declarations (patterns must be validated).
void collectPatVarTypes(const struct Program &P, const ActionPattern &Pat,
                        std::map<std::string, BaseType> &Out);

/// Renders a symbolic action for certificates/diagnostics.
std::string symActionStr(const TermContext &Ctx, const SymAction &A);

} // namespace reflex

#endif // REFLEX_VERIFY_SYMSTATE_H
