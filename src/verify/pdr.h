//===- verify/pdr.h - Property-directed reachability ------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A PDR/IC3 engine over the behavioral abstraction: the second backend of
/// the portfolio prover (verify/engine.h). Where the induction engine
/// discharges a history obligation by synthesizing a guard invariant from
/// the obligation's own branch conditions, PDR asks a complementary
/// question: is the *pre-state* the obligation fires from reachable at
/// all? It maintains a trace of frames F_0 ⊆ F_1 ⊆ ... ⊆ F_k — each a set
/// of clauses over the canonical state symbols, with F_i
/// over-approximating the states reachable in at most i exchanges —
/// blocks the obligation's pre-state cube frame by frame (proof
/// obligations ordered by level, counterexamples-to-induction recursed as
/// predecessor cubes, blocked cubes inductively generalized literal by
/// literal), and declares victory when two adjacent frames coincide: that
/// frame is an inductive invariant excluding every bad cube.
///
/// The state space is the valuation of the program's state variables; one
/// transition per (handler summary, symbolic path), with the path's
/// Updates as the post-state assignment. Because the solver is
/// sound-for-Unsat only (no models), counterexamples-to-induction are
/// over-approximated syntactically: the predecessor of cube c through
/// path p is the state-pure projection of p's path condition conjoined
/// with c's post-image — every concrete predecessor satisfies it, so
/// blocking it blocks them all. Frame clauses enter queries by a
/// deterministic case split (the solver handles conjunctions of literals
/// only).
///
/// On Proved, the final frame is emitted as a *clausal-invariant
/// certificate* (Certificate::InvClauses, Engine = "pdr"): the checker
/// re-validates that the invariant is initial, consecutive, and excludes
/// every frame-blocked obligation — each a solver obligation
/// (checkPdrInvariant) — in addition to the canonical re-derivation
/// comparison shared with induction certificates. On a level-0
/// counterexample the abstract trace is confirmed through the concrete
/// bounded model checker, so a PDR Refuted carries the same kind of
/// concrete Trace a BMC refutation does; an unconfirmed abstraction is
/// reported as Unknown, never as Refuted.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_PDR_H
#define REFLEX_VERIFY_PDR_H

#include "verify/bmc.h"
#include "verify/prover.h"

namespace reflex {

/// Outcome of a PDR proof attempt. Unlike the induction prover, PDR can
/// refute: a level-0 obligation that intersects the initial states yields
/// an abstract counterexample, which is replayed through the concrete
/// semantics (bmcSearch) before being believed.
struct PdrOutcome {
  bool Proved = false;
  /// A concrete, trace-checked counterexample was found.
  bool Refuted = false;
  /// Proved only: Engine == "pdr", Steps mirror the obligation
  /// enumeration, InvClauses carry the final frame.
  Certificate Cert;
  /// !Proved: the failing obligation, frame-limit note, or refutation
  /// explanation.
  std::string Reason;
  Trace Counterexample; ///< Refuted only.
};

/// Attempts to prove (or concretely refute) trace property \p Prop by
/// property-directed reachability over \p Abs. Deterministic: identical
/// inputs yield identical certificates, clause-for-clause — the same
/// contract the induction prover honors, and what lets the proof cache
/// compare canonical forms byte-for-byte. Respects
/// \p Opts.Budget/.Footprint like proveTraceProperty (the footprint is
/// always all-handlers: every transition is consulted).
PdrOutcome provePdrProperty(TermContext &Ctx, Solver &Solv, const Program &P,
                            const BehAbs &Abs, const Property &Prop,
                            const ProverOptions &Opts);

/// The checker-side validation of a PDR clausal certificate: re-enumerates
/// the proof obligations (verifying the recorded steps match), then
/// validates the clausal invariant with fresh solver obligations —
/// initial (no init path reaches a blocked cube), consecutive (no
/// transition leaves the invariant region), and property-implying (every
/// frame-blocked obligation's pre-state cube is excluded). Returns false
/// with \p Why on the first failed obligation; tampered, truncated, and
/// non-inductive clause sets all fail here.
bool checkPdrInvariant(TermContext &Ctx, Solver &Solv, const Program &P,
                       const BehAbs &Abs, const Property &Prop,
                       const Certificate &Cert, const ProverOptions &Opts,
                       std::string &Why);

} // namespace reflex

#endif // REFLEX_VERIFY_PDR_H
