//===- verify/absreplay.h - Trace inclusion in BehAbs -----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks that a concrete trace is accepted by the behavioral abstraction:
/// the trace must decompose into the init emissions followed by a sequence
/// of exchanges, each of which instantiates some symbolic path of the
/// corresponding handler summary (conditions evaluate to true, emissions
/// agree value-for-value, updates track the concrete state, failed-lookup
/// facts hold of the concrete component set).
///
/// The paper proves "any trace induced by running the interpreter on a
/// program is included in that program's behavioral abstraction" once and
/// for all in Coq (Figure 1, arrow A). The C++ substitution checks the
/// same inclusion dynamically: the property-based refinement tests drive
/// the runtime with random schedules and replay every produced trace
/// through this checker.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_ABSREPLAY_H
#define REFLEX_VERIFY_ABSREPLAY_H

#include "ast/program.h"
#include "trace/action.h"
#include "verify/behabs.h"

#include <string>

namespace reflex {

struct ReplayResult {
  bool Included = false;
  /// Number of exchanges successfully matched.
  size_t Exchanges = 0;
  std::string Why;
};

/// Replays \p Tr against \p Abs. \p P must be the validated program the
/// abstraction was built from.
ReplayResult replayTrace(TermContext &Ctx, const Program &P,
                         const BehAbs &Abs, const Trace &Tr);

} // namespace reflex

#endif // REFLEX_VERIFY_ABSREPLAY_H
