//===- verify/incremental.cc - Incremental re-verification ------*- C++ -*-===//

#include "verify/incremental.h"

#include "ast/printer.h"
#include "service/proofcache.h"
#include "service/scheduler.h"
#include "support/timer.h"

#include <memory>
#include <set>
#include <sstream>

namespace reflex {

IncrementalVerifier::IncrementalVerifier(const VerifyOptions &Opts,
                                         ProofCache *Cache)
    : Opts(Opts), Cache(Cache) {}

IncrementalVerifier::~IncrementalVerifier() = default;

void IncrementalVerifier::setScheduler(const SchedulerOptions &S) {
  Sched = std::make_unique<SchedulerOptions>(S);
}

std::string codeFingerprint(const Program &P) {
  // Render everything except properties. printProgram emits properties
  // last, but re-rendering a stripped structural copy avoids depending on
  // that: print section by section.
  std::string Out = printProgram(P);
  size_t Pos = Out.find("\nproperty ");
  if (Pos != std::string::npos)
    Out.resize(Pos);
  return Out;
}

void IncrementalVerifier::seedVerdicts(
    const Program &P, std::map<std::string, PropertyResult> Seeds) {
  LastFp = ProgramFingerprints::compute(P);
  // The seeded verdicts' footprints name path ids of *this* program, so
  // the old side of the next edit's path comparison is this program's
  // rendered abstraction.
  std::shared_ptr<const FrozenAbstraction> Abs =
      FrozenAbstraction::build(P, Opts);
  LastPathFp.clear();
  if (Abs->buildOutcome() == BudgetOutcome::Ok)
    LastPathFp = computePathFingerprints(Abs->context(), Abs->behAbs());
  HaveLast = true;
  Verdicts = std::move(Seeds);
}

IncrementalVerifier::Outcome IncrementalVerifier::verify(const Program &P) {
  Outcome Out;
  Out.Report.ProgramName = P.Name;
  WallTimer Timer;

  ProgramFingerprints Fp = ProgramFingerprints::compute(P);
  // Property keys whose verdicts survived a handler edit *this call*.
  std::set<std::string> RetainedByFootprint;

  // The current program's frozen abstraction, built at most once per call
  // and reused everywhere it is needed: the rendered path fingerprints,
  // the sequential pass-2 session, and — in scheduler mode with a
  // persistent share — the share's phase-1 slot.
  std::shared_ptr<const FrozenAbstraction> Abs;
  auto AbsFor = [&]() -> const FrozenAbstraction & {
    if (!Abs) {
      VerifyOptions BuildOpts = Opts;
      if (Sched && Sched->Cancel)
        BuildOpts.Cancel = nullptr; // the scheduler strips it too (its
                                    // token rides per-job Deadlines)
      Abs = FrozenAbstraction::build(P, BuildOpts);
    }
    return *Abs;
  };
  auto PathFpsFor = [&]() -> PathFingerprints {
    const FrozenAbstraction &A = AbsFor();
    if (A.buildOutcome() != BudgetOutcome::Ok)
      return {}; // no per-path identity for a truncated build: reuse
                 // against it conservatively falls back
    return computePathFingerprints(A.context(), A.behAbs());
  };

  bool ProgramChanged = !HaveLast;
  bool PathFpCurrent = false;
  if (HaveLast) {
    if (Fp.DeclFp != LastFp.DeclFp) {
      // Declarations changed (components, messages, state variables,
      // init): everything a proof consulted may mean something else now.
      Verdicts.clear();
      ProgramChanged = true;
    } else {
      FingerprintDelta D = fingerprintDelta(LastFp.Handlers, Fp.Handlers);
      if (!D.empty()) {
        ProgramChanged = true;
        // Handler bodies changed: keep exactly the verdicts whose proofs
        // provably did not look at the edit — comparing the old and new
        // rendered summaries path by path (see verify/footprint.h).
        PathFingerprints NewPathFp = PathFpsFor();
        for (auto It = Verdicts.begin(); It != Verdicts.end();) {
          if (footprintReusable(It->second.Footprint, D, LastPathFp,
                                NewPathFp, Granularity)) {
            if (Granularity == FootprintGranularity::Path &&
                !footprintReusable(It->second.Footprint, D, LastPathFp,
                                   NewPathFp, FootprintGranularity::Handler))
              It->second.PathHit = true;
            It->second.FootprintHit = true;
            RetainedByFootprint.insert(It->first);
            ++It;
          } else {
            ++Out.Report.PathFallbacks;
            It = Verdicts.erase(It);
          }
        }
        LastPathFp = std::move(NewPathFp);
        PathFpCurrent = true;
      }
    }
  }
  // Keep LastPathFp pinned to the program LastFp describes: the next
  // edit's reuse decision compares against it as the "old" side.
  if (ProgramChanged && !PathFpCurrent)
    LastPathFp = PathFpsFor();
  LastFp = std::move(Fp);
  HaveLast = true;

  // Pass 1, in declaration order: serve what survives, collect what must
  // be (re)verified.
  std::vector<PropertyResult> Results(P.Properties.size());
  std::vector<size_t> NeedIdx;
  // Audit mode: every property served without a fresh verification.
  std::vector<const Property *> ToAudit;
  for (size_t I = 0; I < P.Properties.size(); ++I) {
    const Property &Prop = P.Properties[I];
    std::string Key = Prop.str();
    auto It = Verdicts.find(Key);
    if (It != Verdicts.end()) {
      ++Out.Reused;
      if (RetainedByFootprint.count(Key))
        ++Out.FootprintReused;
      if (It->second.FootprintHit)
        ++Out.Report.FootprintHits;
      if (It->second.PathHit)
        ++Out.Report.PathHits;
      if (AuditReuse)
        ToAudit.push_back(&Prop);
      Results[I] = It->second;
      continue;
    }
    NeedIdx.push_back(I);
  }

  // Pass 2: verify the needed properties — either through the parallel
  // scheduler as one batch sharing a frozen abstraction and the sharded
  // cache tiers (setScheduler; this is the daemon's `edit` path), or on
  // one private sequential session. Both are verdict-identical.
  if (!NeedIdx.empty()) {
    if (Sched) {
      // Seed the persistent share's phase-1 slot with the abstraction
      // already built for the path fingerprints, so the batch's workers
      // do not rebuild it. Budget-failed builds stay out of the slot,
      // exactly as the scheduler's own get-or-build keeps them out.
      if (Sched->SharedCaches && Sched->Share && Abs &&
          Abs->buildOutcome() == BudgetOutcome::Ok) {
        std::lock_guard<std::mutex> Lock(Sched->Share->Mu);
        if (!Sched->Share->Abs)
          Sched->Share->Abs = Abs;
      }
      SchedulerOptions S = *Sched;
      S.Verify = Opts;
      S.Cache = Cache;
      BatchOutcome B = verifyPropertySubset(P, NeedIdx, S);
      for (size_t J = 0; J < NeedIdx.size(); ++J)
        Results[NeedIdx[J]] = std::move(B.Reports[0].Results[J]);
    } else {
      // The session reuses the abstraction the path fingerprints were
      // computed from (verdict-identical to a private build: the builder
      // is deterministic).
      AbsFor();
      VerifySession Session(Abs);
      for (size_t I : NeedIdx)
        Results[I] = verifyPropertyCached(Session, P.Properties[I], Cache,
                                          &LastFp, nullptr, &LastPathFp);
    }
    for (size_t I : NeedIdx) {
      PropertyResult &R = Results[I];
      ++Out.Reverified;
      if (R.CacheHit) {
        ++Out.CacheHits;
        if (AuditReuse)
          ToAudit.push_back(&P.Properties[I]);
      }
      if (R.FootprintHit)
        ++Out.Report.FootprintHits;
      if (R.PathHit)
        ++Out.Report.PathHits;
      if (R.PathFallback)
        ++Out.Report.PathFallbacks;
      // Strip only what cannot outlive the session: the live certificate
      // (its terms reference the session's term context) and the
      // counterexample trace. The certificate JSON is retained, so reused
      // proved verdicts still carry their proof in exportable form.
      R.Cert = Certificate();
      R.Counterexample = Trace();
      // Budget statuses are circumstances, not verdicts: a later edit
      // cycle may well have the time the last one lacked, so never reuse
      // them.
      if (!isBudgetStatus(R.Status))
        Verdicts[P.Properties[I].str()] = R;
    }
  }
  for (PropertyResult &R : Results)
    Out.Report.Results.push_back(std::move(R));

  if (!ToAudit.empty()) {
    // Re-prove every served verdict in a fresh session (no cache, no
    // reuse) and require byte-identical results. Verdicts are
    // deterministic functions of (program, property, options), so any
    // disagreement means a reuse decision was unsound.
    VerifySession Fresh(P, Opts);
    for (const Property *Prop : ToAudit) {
      PropertyResult Ref = Fresh.verify(*Prop);
      const PropertyResult *Served = Out.Report.find(Prop->Name);
      ++Out.Audited;
      std::ostringstream Err;
      if (!Served)
        Err << "served result vanished from the report";
      else if (Served->Status != Ref.Status)
        Err << "status mismatch: served " << verifyStatusName(Served->Status)
            << ", fresh " << verifyStatusName(Ref.Status);
      else if (Served->Reason != Ref.Reason)
        Err << "reason mismatch: served '" << Served->Reason << "', fresh '"
            << Ref.Reason << "'";
      else if (Served->Status == VerifyStatus::Proved &&
               Served->CertJson != Ref.CertJson)
        Err << "certificate mismatch (served and fresh audit JSON differ)";
      std::string Msg = Err.str();
      if (!Msg.empty()) {
        ++Out.AuditFailures;
        Out.AuditErrors.push_back(Prop->Name + ": " + Msg);
      }
    }
  }

  Out.Report.TotalMillis = Timer.elapsedMillis();
  return Out;
}

} // namespace reflex
