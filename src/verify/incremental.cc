//===- verify/incremental.cc - Incremental re-verification ------*- C++ -*-===//

#include "verify/incremental.h"

#include "ast/printer.h"
#include "service/proofcache.h"
#include "support/timer.h"

#include <memory>
#include <set>
#include <sstream>

namespace reflex {

std::string codeFingerprint(const Program &P) {
  // Render everything except properties. printProgram emits properties
  // last, but re-rendering a stripped structural copy avoids depending on
  // that: print section by section.
  std::string Out = printProgram(P);
  size_t Pos = Out.find("\nproperty ");
  if (Pos != std::string::npos)
    Out.resize(Pos);
  return Out;
}

IncrementalVerifier::Outcome IncrementalVerifier::verify(const Program &P) {
  Outcome Out;
  Out.Report.ProgramName = P.Name;
  WallTimer Timer;

  ProgramFingerprints Fp = ProgramFingerprints::compute(P);
  // Property keys whose verdicts survived a handler edit *this call*.
  std::set<std::string> RetainedByFootprint;
  if (HaveLast) {
    if (Fp.DeclFp != LastFp.DeclFp) {
      // Declarations changed (components, messages, state variables,
      // init): everything a proof consulted may mean something else now.
      Verdicts.clear();
    } else {
      FingerprintDelta D = fingerprintDelta(LastFp.Handlers, Fp.Handlers);
      if (!D.empty()) {
        // Handler bodies changed: keep exactly the verdicts whose proofs
        // provably did not look at the edit (see verify/footprint.h).
        for (auto It = Verdicts.begin(); It != Verdicts.end();) {
          if (footprintReusable(It->second.Footprint, D)) {
            It->second.FootprintHit = true;
            RetainedByFootprint.insert(It->first);
            ++It;
          } else {
            It = Verdicts.erase(It);
          }
        }
      }
    }
  }
  LastFp = std::move(Fp);
  HaveLast = true;

  // One shared session for everything that must be (re)verified.
  std::unique_ptr<VerifySession> Session;
  // Audit mode: every property served without a fresh verification.
  std::vector<const Property *> ToAudit;
  for (const Property &Prop : P.Properties) {
    std::string Key = Prop.str();
    auto It = Verdicts.find(Key);
    if (It != Verdicts.end()) {
      ++Out.Reused;
      if (RetainedByFootprint.count(Key))
        ++Out.FootprintReused;
      if (It->second.FootprintHit)
        ++Out.Report.FootprintHits;
      if (AuditReuse)
        ToAudit.push_back(&Prop);
      Out.Report.Results.push_back(It->second);
      continue;
    }
    if (!Session)
      Session = std::make_unique<VerifySession>(P, Opts);
    PropertyResult R = verifyPropertyCached(*Session, Prop, Cache, &LastFp);
    ++Out.Reverified;
    if (R.CacheHit) {
      ++Out.CacheHits;
      if (AuditReuse)
        ToAudit.push_back(&Prop);
    }
    if (R.FootprintHit)
      ++Out.Report.FootprintHits;
    // Strip only what cannot outlive the session: the live certificate
    // (its terms reference the session's term context) and the
    // counterexample trace. The certificate JSON is retained, so reused
    // proved verdicts still carry their proof in exportable form.
    PropertyResult Cached = R;
    Cached.Cert = Certificate();
    Cached.Counterexample = Trace();
    // Budget statuses are circumstances, not verdicts: a later edit cycle
    // may well have the time the last one lacked, so never reuse them.
    if (!isBudgetStatus(Cached.Status))
      Verdicts[Key] = Cached;
    Out.Report.Results.push_back(std::move(Cached));
  }

  if (!ToAudit.empty()) {
    // Re-prove every served verdict in a fresh session (no cache, no
    // reuse) and require byte-identical results. Verdicts are
    // deterministic functions of (program, property, options), so any
    // disagreement means a reuse decision was unsound.
    VerifySession Fresh(P, Opts);
    for (const Property *Prop : ToAudit) {
      PropertyResult Ref = Fresh.verify(*Prop);
      const PropertyResult *Served = Out.Report.find(Prop->Name);
      ++Out.Audited;
      std::ostringstream Err;
      if (!Served)
        Err << "served result vanished from the report";
      else if (Served->Status != Ref.Status)
        Err << "status mismatch: served " << verifyStatusName(Served->Status)
            << ", fresh " << verifyStatusName(Ref.Status);
      else if (Served->Reason != Ref.Reason)
        Err << "reason mismatch: served '" << Served->Reason << "', fresh '"
            << Ref.Reason << "'";
      else if (Served->Status == VerifyStatus::Proved &&
               Served->CertJson != Ref.CertJson)
        Err << "certificate mismatch (served and fresh audit JSON differ)";
      std::string Msg = Err.str();
      if (!Msg.empty()) {
        ++Out.AuditFailures;
        Out.AuditErrors.push_back(Prop->Name + ": " + Msg);
      }
    }
  }

  Out.Report.TotalMillis = Timer.elapsedMillis();
  return Out;
}

} // namespace reflex
