//===- verify/incremental.cc - Incremental re-verification ------*- C++ -*-===//

#include "verify/incremental.h"

#include "ast/printer.h"
#include "service/proofcache.h"
#include "support/timer.h"

namespace reflex {

std::string codeFingerprint(const Program &P) {
  // Render everything except properties. printProgram emits properties
  // last, but re-rendering a stripped structural copy avoids depending on
  // that: print section by section.
  std::string Out = printProgram(P);
  size_t Pos = Out.find("\nproperty ");
  if (Pos != std::string::npos)
    Out.resize(Pos);
  return Out;
}

IncrementalVerifier::Outcome IncrementalVerifier::verify(const Program &P) {
  Outcome Out;
  Out.Report.ProgramName = P.Name;
  WallTimer Timer;

  std::string Code = codeFingerprint(P);
  if (Code != LastCodeFingerprint) {
    // Kernel changed: previous verdicts are void (any handler can matter
    // to any property through its guard invariants).
    Verdicts.clear();
    LastCodeFingerprint = std::move(Code);
  }

  // One shared session for everything that must be (re)verified.
  std::unique_ptr<VerifySession> Session;
  for (const Property &Prop : P.Properties) {
    std::string Key = Prop.str();
    auto It = Verdicts.find(Key);
    if (It != Verdicts.end()) {
      ++Out.Reused;
      Out.Report.Results.push_back(It->second);
      continue;
    }
    if (!Session)
      Session = std::make_unique<VerifySession>(P, Opts);
    PropertyResult R =
        verifyPropertyCached(*Session, Prop, Cache, LastCodeFingerprint);
    ++Out.Reverified;
    if (R.CacheHit)
      ++Out.CacheHits;
    // Strip only what cannot outlive the session: the live certificate
    // (its terms reference the session's term context) and the
    // counterexample trace. The certificate JSON is retained, so reused
    // proved verdicts still carry their proof in exportable form.
    PropertyResult Cached = R;
    Cached.Cert = Certificate();
    Cached.Counterexample = Trace();
    // Budget statuses are circumstances, not verdicts: a later edit cycle
    // may well have the time the last one lacked, so never reuse them.
    if (!isBudgetStatus(Cached.Status))
      Verdicts[Key] = Cached;
    Out.Report.Results.push_back(std::move(Cached));
  }
  Out.Report.TotalMillis = Timer.elapsedMillis();
  return Out;
}

} // namespace reflex
