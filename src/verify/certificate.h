//===- verify/certificate.h - Proof certificates ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explicit proof objects. In the paper the proof search emits Coq proof
/// terms re-checked by Coq's kernel (the de Bruijn criterion: a large
/// untrusted search, a small trusted checker). The C++ substitution keeps
/// that architecture in miniature: the prover records, for every case of
/// the induction over BehAbs, *which* justification discharges it (a local
/// emission, a failed-lookup fact, an auxiliary invariant, ...), and the
/// independent checker (verify/checker.h) re-enumerates all obligations
/// and re-validates every claimed justification using only the solver and
/// the handler summaries. The prover's search heuristics are thereby
/// outside the trusted base.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_CERTIFICATE_H
#define REFLEX_VERIFY_CERTIFICATE_H

#include "prop/property.h"
#include "verify/symstate.h"

#include <map>
#include <string>
#include <vector>

namespace reflex {

/// How one proof obligation was discharged.
enum class Justify : uint8_t {
  /// The assumption set (path condition + match condition) is
  /// contradictory: the case cannot arise.
  PathInfeasible,
  /// An earlier/later emission in the same path satisfies the obligation
  /// (at LocalIndex).
  LocalObligation,
  /// A component found by lookup witnesses a prior Spawn action matching
  /// the obligation (the component-origin axiom: every live component was
  /// spawned, and spawns are trace actions).
  CompOrigin,
  /// Auxiliary invariant #InvariantId supplies the history fact.
  InvariantHistory,
  /// A failed-lookup fact refutes any prior matching Spawn (Disables).
  NoCompHistory,
  /// Invariant step: the guard is preserved, so the inductive hypothesis
  /// applies to the prefix trace.
  GuardPreserved,
  /// The handler cannot emit a matching action nor disturb the guard —
  /// decided syntactically, without symbolic evaluation (§6.4
  /// optimization).
  SyntacticSkip,
  /// Disables: every earlier in-path emission was refuted as a match.
  NoPriorLocal,
  /// PDR only: the obligation's pre-state cube is excluded by the
  /// certificate's clausal invariant (Certificate::InvClauses) — the
  /// trigger occurrence is unreachable.
  FrameBlocked,
};

const char *justifyName(Justify J);

/// One discharged obligation.
struct ProofStep {
  /// "init" or "CompType=>MsgName".
  std::string Where;
  int PathIndex = -1;
  /// Index of the trigger emission within the path (-1 for whole-path
  /// records such as invariant step cases).
  int EmitIndex = -1;
  Justify Kind = Justify::PathInfeasible;
  /// Emission index of a local justification (LocalObligation).
  int LocalIndex = -1;
  /// Id of the auxiliary invariant (InvariantHistory).
  int InvariantId = -1;
  /// The trigger binding σ (pattern variable -> term).
  SymBinding Binding;
};

/// An auxiliary invariant of the form
///   Guard(state, vars) ⇒ [∃ / ∄] action matching Action(vars) in trace
/// together with its own inductive proof (base + one step per
/// handler-path).
struct InvariantRecord {
  int Id = 0;
  /// false: guard requires history (∃); true: guard forbids history (∄).
  bool Forbids = false;
  /// Literals over canonical state symbols and pattern-variable symbols.
  std::vector<Lit> Guard;
  ActionPattern Action;
  std::map<std::string, BaseType> VarTypes;
  std::vector<ProofStep> Steps;
};

/// A non-interference case record (one per handler path and sender-label
/// case); the checker re-derives the label split and re-validates the
/// support/label checks.
struct NICaseRecord {
  std::string Where;
  int PathIndex = -1;
  /// true: the sender was (assumed) high in this case.
  bool SenderHigh = false;
  /// Literals added by the label case split.
  std::vector<Lit> LabelLits;
  /// Free-form description of the checks that passed (documentation; not
  /// consumed by the checker).
  std::string Note;
};

/// A complete proof certificate for one property.
struct Certificate {
  std::string ProgramName;
  std::string PropertyName;
  /// Trace op name, or "noninterference".
  std::string Kind;
  std::vector<ProofStep> Steps;
  std::vector<InvariantRecord> Invariants;
  std::vector<NICaseRecord> NICases;
  /// The proof footprint (verify/footprint.h): sorted handler keys the
  /// search consulted, filled in by the verification session for audit
  /// export. Empty when not recorded (or when the footprint is
  /// all-handlers, which the audit JSON spells "*"). Audit-only: the
  /// canonical form omits it (the checker re-derives proofs without
  /// footprints, and footprints are bookkeeping, not proof content).
  std::vector<std::string> Footprint;
  /// Solver-level proof log (docs/SOLVER.md): rendered reason trails for
  /// the Unsat answers of the checker's re-derivation, each one replayed
  /// by the independent trail validator before it lands here, capped at a
  /// fixed line budget and closed with a count + aggregate-hash summary
  /// line. Audit-only like Footprint: filled by the checker (the live
  /// prover runs with logging off), exported by toJson, omitted from the
  /// canonical form, and ignored by certsEqual — the trails justify the
  /// solver's answers, they are not proof content.
  std::vector<std::string> SolverLog;
  /// The proof engine that produced this certificate: "pdr" for PDR
  /// clausal certificates, empty for the induction prover (the default is
  /// omitted from every serialization, keeping induction certificates
  /// byte-identical to pre-portfolio builds).
  std::string Engine;
  /// PDR only: the final inductive frame as clauses over the canonical
  /// state symbols (each clause a disjunction of literals; the negation of
  /// a blocked cube). The checker re-proves that the conjunction is
  /// initial, consecutive, and excludes every FrameBlocked obligation.
  std::vector<std::vector<Lit>> InvClauses;

  const InvariantRecord *findInvariant(int Id) const;

  /// JSON export for auditing.
  std::string toJson(const TermContext &Ctx) const;

  /// Canonical serialization: a deterministic JSON rendering of exactly
  /// the fields the checker compares (verify/checker.cc's certsEqual) —
  /// no program name, no free-form notes. Two certificates produced by
  /// the deterministic prover for the same (program, property, options)
  /// have identical canonical forms, which is what the persistent proof
  /// cache stores and what checkCanonicalCertificate compares against a
  /// fresh re-derivation.
  std::string canonical(const TermContext &Ctx) const;
};

} // namespace reflex

#endif // REFLEX_VERIFY_CERTIFICATE_H
