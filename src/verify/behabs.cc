//===- verify/behabs.cc - Behavioral abstraction ----------------*- C++ -*-===//

#include "verify/behabs.h"

namespace reflex {

// Index key: the pair is unambiguous because identifiers cannot contain
// '\0'.
static std::string summaryKey(const std::string &CompType,
                              const std::string &MsgName) {
  std::string Key;
  Key.reserve(CompType.size() + 1 + MsgName.size());
  Key += CompType;
  Key += '\0';
  Key += MsgName;
  return Key;
}

const HandlerSummary *BehAbs::findSummary(const std::string &CompType,
                                          const std::string &MsgName) const {
  if (!SummaryIndex.empty()) {
    auto It = SummaryIndex.find(summaryKey(CompType, MsgName));
    return It == SummaryIndex.end() ? nullptr : &Handlers[It->second];
  }
  for (const HandlerSummary &H : Handlers)
    if (H.CompType == CompType && H.MsgName == MsgName)
      return &H;
  return nullptr;
}

void BehAbs::indexSummaries() {
  SummaryIndex.clear();
  SummaryIndex.reserve(Handlers.size());
  for (size_t I = 0; I < Handlers.size(); ++I)
    SummaryIndex.emplace(summaryKey(Handlers[I].CompType, Handlers[I].MsgName),
                         I);
}

bool BehAbs::incomplete() const {
  if (Init.Incomplete)
    return true;
  for (const HandlerSummary &H : Handlers)
    if (H.Incomplete)
      return true;
  return false;
}

BehAbs buildBehAbs(TermContext &Ctx, const Program &P,
                   const SymExecLimits &Limits) {
  BehAbs Abs;
  Abs.Init = summarizeInit(Ctx, P, Limits);
  for (const ComponentTypeDecl &CT : P.Components) {
    for (const MessageDecl &MD : P.Messages) {
      if (const Handler *H = P.findHandler(CT.Name, MD.Name))
        Abs.Handlers.push_back(
            summarizeHandler(Ctx, P, *H, Abs.Init.CompGlobals, Limits));
      else
        Abs.Handlers.push_back(makeDefaultSummary(Ctx, P, CT.Name, MD.Name));
    }
  }
  // Built eagerly (not lazily on first lookup) so a frozen abstraction can
  // be read concurrently without synchronization.
  Abs.indexSummaries();
  return Abs;
}

} // namespace reflex
