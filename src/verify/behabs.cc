//===- verify/behabs.cc - Behavioral abstraction ----------------*- C++ -*-===//

#include "verify/behabs.h"

namespace reflex {

const HandlerSummary *BehAbs::findSummary(const std::string &CompType,
                                          const std::string &MsgName) const {
  for (const HandlerSummary &H : Handlers)
    if (H.CompType == CompType && H.MsgName == MsgName)
      return &H;
  return nullptr;
}

bool BehAbs::incomplete() const {
  if (Init.Incomplete)
    return true;
  for (const HandlerSummary &H : Handlers)
    if (H.Incomplete)
      return true;
  return false;
}

BehAbs buildBehAbs(TermContext &Ctx, const Program &P,
                   const SymExecLimits &Limits) {
  BehAbs Abs;
  Abs.Init = summarizeInit(Ctx, P, Limits);
  for (const ComponentTypeDecl &CT : P.Components) {
    for (const MessageDecl &MD : P.Messages) {
      if (const Handler *H = P.findHandler(CT.Name, MD.Name))
        Abs.Handlers.push_back(
            summarizeHandler(Ctx, P, *H, Abs.Init.CompGlobals, Limits));
      else
        Abs.Handlers.push_back(makeDefaultSummary(Ctx, P, CT.Name, MD.Name));
    }
  }
  return Abs;
}

} // namespace reflex
