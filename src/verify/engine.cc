//===- verify/engine.cc - Proof-engine selection ----------------*- C++ -*-===//

#include "verify/engine.h"

namespace reflex {

const char *engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Induction:
    return "induction";
  case EngineKind::Pdr:
    return "pdr";
  case EngineKind::Portfolio:
    return "portfolio";
  }
  return "?";
}

std::optional<EngineKind> parseEngineKind(const std::string &Name) {
  if (Name.empty() || Name == "induction")
    return EngineKind::Induction;
  if (Name == "pdr")
    return EngineKind::Pdr;
  if (Name == "portfolio")
    return EngineKind::Portfolio;
  return std::nullopt;
}

const char *servingEngineName(EngineKind K) {
  return K == EngineKind::Pdr ? "pdr" : "induction";
}

} // namespace reflex
