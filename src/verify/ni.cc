//===- verify/ni.cc - Non-interference proofs -------------------*- C++ -*-===//

#include "verify/ni.h"

#include <cassert>
#include <sstream>

namespace reflex {

namespace {

enum class Label : uint8_t { Yes, No, Maybe };

class NIEngine {
public:
  NIEngine(TermContext &Ctx, Solver &Solv, const Program &P,
           const BehAbs &Abs, const NIProperty &NI, Certificate &Cert)
      : Ctx(Ctx), Solv(Solv), P(P), Abs(Abs), NI(NI), Cert(Cert) {
    if (NI.Param) {
      // The parameter's type comes from its pattern positions.
      BaseType Ty = BaseType::Str;
      for (const CompPattern &CP : NI.HighComps) {
        const ComponentTypeDecl *CT = P.findComponentType(CP.TypeName);
        assert(CT);
        for (const CompFieldPattern &F : CP.Fields)
          if (F.Pat.Kind == PatTerm::Var && F.Pat.VarName == *NI.Param)
            Ty = CT->Config[F.FieldIndex].Type;
      }
      ParamSym = Ctx.patSym(*NI.Param, Ty);
    }
    HighVars.insert(NI.HighVars.begin(), NI.HighVars.end());

    // Component types whose instances are created exclusively by init and
    // by handlers of *unconditionally high* senders. The live set of such
    // a type is a deterministic function of the high inputs, so lookups
    // over it resolve identically in both executions even when individual
    // instances are labeled low (e.g. browser Tabs, all spawned by the
    // high UI component, looked up by id).
    for (const ComponentTypeDecl &CT : P.Components) {
      bool OnlyHigh = true;
      for (const Handler &H : P.Handlers) {
        if (!cmdSpawnsType(*H.Body, CT.Name))
          continue;
        if (!senderAlwaysHigh(H.CompType)) {
          OnlyHigh = false;
          break;
        }
      }
      if (OnlyHigh)
        HighDeterminedTypes.insert(CT.Name);
    }
  }

  /// True if every component of type \p TypeName is high regardless of
  /// configuration (an unconstrained high pattern names the type).
  bool senderAlwaysHigh(const std::string &TypeName) const {
    for (const CompPattern &CP : NI.HighComps)
      if (CP.TypeName == TypeName && CP.Fields.empty())
        return true;
    return false;
  }

  void setBudget(Deadline *D) { Budget = D; }

  bool run(std::string &WhyOut) {
    // The common init prefix must be deterministic: no native calls.
    if (P.Init && cmdHasCall(*P.Init)) {
      WhyOut = "init invokes a native call; the common prefix of the two "
               "executions would be nondeterministic";
      return false;
    }

    for (const HandlerSummary &S : Abs.Handlers) {
      // Budget backstop; the shared Solver polls per query on its own.
      if (Budget && Budget->expired()) {
        WhyOut = "verification budget exhausted";
        return false;
      }
      if (!processSummary(S)) {
        WhyOut = Why;
        return false;
      }
    }
    return true;
  }

private:
  //===--------------------------------------------------------------------===
  // Component labeling
  //===--------------------------------------------------------------------===

  /// The match condition for \p C against high pattern \p CP, or nullopt
  /// when structurally impossible.
  std::optional<std::vector<Lit>> highMatchLits(TermRef C,
                                                const CompPattern &CP) {
    if (Ctx.symbolStr(C->Str) != CP.TypeName)
      return std::nullopt;
    std::vector<Lit> Lits;
    for (const CompFieldPattern &F : CP.Fields) {
      assert(F.FieldIndex >= 0);
      TermRef Actual = C->Ops[F.FieldIndex];
      TermRef Target = nullptr;
      switch (F.Pat.Kind) {
      case PatTerm::Wild:
        continue;
      case PatTerm::Lit:
        Target = Ctx.lit(F.Pat.LitVal);
        break;
      case PatTerm::Var:
        assert(NI.Param && F.Pat.VarName == *NI.Param);
        Target = ParamSym;
        break;
      }
      TermRef EqT = Ctx.eq(Actual, Target);
      if (EqT->Kind == TermKind::BoolLit) {
        if (EqT->IntVal == 0)
          return std::nullopt;
        continue;
      }
      Lits.emplace_back(EqT, true);
    }
    return Lits;
  }

  /// θc: is component \p C high under the asserted case scope?
  Label labelOf(TermRef C) {
    bool AnyPossible = false;
    for (const CompPattern &CP : NI.HighComps) {
      auto Lits = highMatchLits(C, CP);
      if (!Lits)
        continue;
      if (Solv.entailsAllUnder(*Lits))
        return Label::Yes;
      if (Solv.maybeSatUnder(*Lits))
        AnyPossible = true;
    }
    return AnyPossible ? Label::Maybe : Label::No;
  }

  //===--------------------------------------------------------------------===
  // Per-handler analysis
  //===--------------------------------------------------------------------===

  bool processSummary(const HandlerSummary &S) {
    std::string Where = S.CompType + "=>" + S.MsgName;

    // Build the sender-label case split.
    std::vector<std::vector<Lit>> HighCases;
    std::vector<std::vector<Lit>> LowCases;
    bool AlwaysHigh = false;
    std::vector<const CompPattern *> TypePatterns;
    for (const CompPattern &CP : NI.HighComps)
      if (CP.TypeName == S.CompType)
        TypePatterns.push_back(&CP);

    if (TypePatterns.empty()) {
      LowCases.push_back({});
    } else {
      for (const CompPattern *CP : TypePatterns) {
        auto Lits = highMatchLits(S.SenderComp, *CP);
        if (!Lits)
          continue; // cannot match (e.g. constraint folds false)
        if (Lits->empty())
          AlwaysHigh = true;
        HighCases.push_back(std::move(*Lits));
      }
      if (!AlwaysHigh) {
        // Low = conjunction over patterns of (some constraint fails) =
        // cross product of per-pattern negated constraints.
        LowCases.push_back({});
        for (const CompPattern *CP : TypePatterns) {
          auto Lits = highMatchLits(S.SenderComp, *CP);
          if (!Lits)
            continue; // structurally can't match: contributes nothing
          std::vector<std::vector<Lit>> Next;
          for (const std::vector<Lit> &Base : LowCases)
            for (const Lit &L : *Lits) {
              std::vector<Lit> Case = Base;
              Case.push_back(L.negated());
              Next.push_back(std::move(Case));
            }
          LowCases = std::move(Next);
          if (LowCases.size() > 64) {
            Why = "sender label case split too large at " + Where;
            return false;
          }
        }
      }
    }

    for (size_t I = 0; I < S.Paths.size(); ++I) {
      for (const std::vector<Lit> &Case : HighCases)
        if (!checkHigh(S, Where, static_cast<int>(I), S.Paths[I], Case))
          return false;
      for (const std::vector<Lit> &Case : LowCases)
        if (!checkLow(S, Where, static_cast<int>(I), S.Paths[I], Case))
          return false;
    }
    return true;
  }

  /// NIlo: a low sender's handler may not produce high-visible effects.
  bool checkLow(const HandlerSummary &S, const std::string &Where,
                int PathIdx, const SymPath &Path,
                const std::vector<Lit> &CaseLits) {
    std::vector<Lit> Assume = Path.Cond;
    Assume.insert(Assume.end(), CaseLits.begin(), CaseLits.end());
    Solver::Scope CaseScope(Solv, Assume);
    if (Solv.check() == SatResult::Unsat)
      return true;

    for (const SymAction &E : Path.Emits) {
      if (E.Kind != SymAction::Send && E.Kind != SymAction::Spawn)
        continue;
      Label L = labelOf(E.Comp);
      if (L != Label::No) {
        Why = "NIlo violated at " + Where + " path " +
              std::to_string(PathIdx) + ": low handler " +
              (E.Kind == SymAction::Send ? "sends to" : "spawns") +
              " a possibly-high component " + Ctx.str(E.Comp);
        return false;
      }
    }
    for (const auto &[Var, Term] : Path.Updates) {
      (void)Term;
      if (HighVars.count(Var)) {
        Why = "NIlo violated at " + Where + " path " +
              std::to_string(PathIdx) + ": low handler updates high state "
              "variable '" + Var + "'";
        return false;
      }
    }
    NICaseRecord Rec;
    Rec.Where = Where;
    Rec.PathIndex = PathIdx;
    Rec.SenderHigh = false;
    Rec.LabelLits = CaseLits;
    Cert.NICases.push_back(std::move(Rec));
    (void)S;
    return true;
  }

  /// NIhi: a high sender's handler must be a deterministic function of
  /// high data on its high-visible effects.
  bool checkHigh(const HandlerSummary &S, const std::string &Where,
                 int PathIdx, const SymPath &Path,
                 const std::vector<Lit> &CaseLits) {
    std::vector<Lit> Assume = Path.Cond;
    Assume.insert(Assume.end(), CaseLits.begin(), CaseLits.end());
    Solver::Scope CaseScope(Solv, Assume);
    if (Solv.check() == SatResult::Unsat)
      return true;

    // Allowed ("high") symbols on this path.
    std::set<TermRef> AllowedFresh;
    for (TermRef Param : S.Params)
      AllowedFresh.insert(Param);
    for (TermRef Field : S.SenderComp->Ops)
      AllowedFresh.insert(Field);
    for (const SymAction &E : Path.Emits)
      if (E.Kind == SymAction::Call && E.CallResult)
        AllowedFresh.insert(E.CallResult); // nondet contexts are inputs
    // The sender itself is high data: the high input sequence (πi)
    // identifies which component each message came from, so both runs
    // service the same sender instances and replying to the sender is
    // deterministic.
    std::set<TermRef> AllowedComps;
    AllowedComps.insert(S.SenderComp);
    // Lookup-bound components are high data only when the lookup can only
    // ever find high components.
    for (TermRef C : Path.LookupComps) {
      if (labelOf(C) == Label::Yes ||
          HighDeterminedTypes.count(Ctx.symbolStr(C->Str))) {
        AllowedComps.insert(C);
        for (TermRef Field : C->Ops)
          AllowedFresh.insert(Field);
      }
    }

    auto HighSupport = [&](TermRef T) {
      return hasHighSupport(T, AllowedFresh, AllowedComps);
    };

    // (a) Branch/constraint conditions must be functions of high data.
    for (const Lit &L : Assume)
      if (!HighSupport(L.Atom))
        return fallbackNoHighEffects(S, Where,
                                     "branch condition with low support: " +
                                         Ctx.str(L.Atom));
    // Failed lookups are decisions too: the searched predicate must be
    // high data and the lookup must range over high components only.
    for (const NoCompFact &Fact : Path.NoComp) {
      for (const auto &[Index, Required] : Fact.Constraints) {
        (void)Index;
        if (!HighSupport(Required))
          return fallbackNoHighEffects(
              S, Where, "failed lookup constrained by low data");
      }
      if (!HighDeterminedTypes.count(Fact.TypeName) &&
          !lookupHighOnly(Fact))
        return fallbackNoHighEffects(
            S, Where, "failed lookup over possibly-low components of type " +
                          Fact.TypeName);
    }
    for (TermRef C : Path.LookupComps)
      if (!AllowedComps.count(C))
        return fallbackNoHighEffects(
            S, Where, "lookup may find a low component: " + Ctx.str(C));

    // (b,c) High-visible outputs must be functions of high data.
    for (const SymAction &E : Path.Emits) {
      if (E.Kind == SymAction::Send) {
        if (labelOf(E.Comp) == Label::No)
          continue; // low outputs are unconstrained
        if (!HighSupport(E.Comp)) {
          Why = "NIhi violated at " + Where + ": send target " +
                Ctx.str(E.Comp) + " is not a function of high data";
          return false;
        }
        for (TermRef Arg : E.Args)
          if (!HighSupport(Arg)) {
            Why = "NIhi violated at " + Where +
                  ": payload sent to a high component depends on low "
                  "data: " +
                      Ctx.str(Arg);
            return false;
          }
      } else if (E.Kind == SymAction::Spawn) {
        if (labelOf(E.Comp) == Label::No)
          continue;
        for (TermRef Cfg : E.Comp->Ops)
          if (!HighSupport(Cfg)) {
            Why = "NIhi violated at " + Where +
                  ": config of a possibly-high spawn depends on low data";
            return false;
          }
      }
    }

    // (e) High state updates must be functions of high data.
    for (const auto &[Var, Term] : Path.Updates) {
      if (!HighVars.count(Var))
        continue;
      if (!HighSupport(Term)) {
        Why = "NIhi violated at " + Where + ": high variable '" + Var +
              "' assigned a value depending on low data";
        return false;
      }
    }

    NICaseRecord Rec;
    Rec.Where = Where;
    Rec.PathIndex = PathIdx;
    Rec.SenderHigh = true;
    Rec.LabelLits = CaseLits;
    Cert.NICases.push_back(std::move(Rec));
    return true;
  }

  /// Would any component satisfying \p Fact's constraints, under the
  /// asserted case scope, necessarily be high? (Checks a hypothetical
  /// component against the patterns.)
  bool lookupHighOnly(const NoCompFact &Fact) {
    const ComponentTypeDecl *CT = P.findComponentType(Fact.TypeName);
    assert(CT);
    // Deterministic hypothetical symbols (hypSym, fixed serial -1): the
    // checker replays these queries in its reason-trail log, so their
    // rendering must not depend on how many fresh terms the session
    // allocated first. Safe to reuse across calls — each call constrains
    // them only inside its own scope, and freshCompSerial() never issues
    // negative serials, so the comp cannot alias a real component.
    std::vector<TermRef> Fields;
    for (const ConfigField &F : CT->Config)
      Fields.push_back(
          Ctx.hypSym("hyp." + Fact.TypeName + "." + F.Name, F.Type));
    TermRef Hyp = Ctx.comp(Fact.TypeName, CompIdent::FlexPre, /*Serial=*/-1,
                           std::move(Fields));
    Solver::Scope HypScope(Solv);
    for (const auto &[Index, Required] : Fact.Constraints)
      Solv.assume(Lit(Ctx.eq(Hyp->Ops[Index], Required), true));
    return labelOf(Hyp) == Label::Yes;
  }

  /// Sound fallback: the entire handler must have no high-visible effects
  /// (then its internal decisions cannot matter to high observers).
  bool fallbackNoHighEffects(const HandlerSummary &S, const std::string &Where,
                             const std::string &Cause) {
    // Labels here are relative to each path's own condition, not the
    // caller's case split; rewind to the base context first.
    Solver::Suspended Clean(Solv);
    for (size_t I = 0; I < S.Paths.size(); ++I) {
      const SymPath &Path = S.Paths[I];
      Solver::Scope PathScope(Solv, Path.Cond);
      for (const SymAction &E : Path.Emits) {
        if (E.Kind != SymAction::Send && E.Kind != SymAction::Spawn)
          continue;
        if (labelOf(E.Comp) != Label::No) {
          Why = "NIhi violated at " + Where + " (" + Cause +
                "), and the handler has high-visible effects";
          return false;
        }
      }
      for (const auto &[Var, Term] : Path.Updates) {
        (void)Term;
        if (HighVars.count(Var)) {
          Why = "NIhi violated at " + Where + " (" + Cause +
                "), and the handler updates high variable '" + Var + "'";
          return false;
        }
      }
    }
    NICaseRecord Rec;
    Rec.Where = Where;
    Rec.PathIndex = -1;
    Rec.SenderHigh = true;
    Rec.Note = "no-high-effects fallback: " + Cause;
    Cert.NICases.push_back(std::move(Rec));
    return true;
  }

  /// Support check: \p T may only mention allowed symbols.
  bool hasHighSupport(TermRef T, const std::set<TermRef> &AllowedFresh,
                      const std::set<TermRef> &AllowedComps) {
    switch (T->Kind) {
    case TermKind::SymVar:
      switch (T->Tag) {
      case SymTag::State:
        return HighVars.count(Ctx.symbolStr(T->Str)) != 0;
      case SymTag::PatVar:
        return true; // the NI parameter is a rigid constant
      case SymTag::Fresh:
        return AllowedFresh.count(T) != 0;
      }
      return false;
    case TermKind::Comp:
      // Init-rigid components are the same in both runs; new components
      // are deterministic when their configs are; lookup components only
      // when the lookup was vetted.
      if (T->Ident == CompIdent::InitRigid)
        return true;
      if (T->Ident == CompIdent::NewRigid) {
        for (TermRef Op : T->Ops)
          if (!hasHighSupport(Op, AllowedFresh, AllowedComps))
            return false;
        return true;
      }
      return AllowedComps.count(T) != 0;
    default:
      for (TermRef Op : T->Ops)
        if (!hasHighSupport(Op, AllowedFresh, AllowedComps))
          return false;
      return true;
    }
  }

  TermContext &Ctx;
  Solver &Solv;
  const Program &P;
  const BehAbs &Abs;
  const NIProperty &NI;
  Certificate &Cert;
  TermRef ParamSym = nullptr;
  std::set<std::string> HighVars;
  std::set<std::string> HighDeterminedTypes;
  std::string Why;
  Deadline *Budget = nullptr;
};

} // namespace

NIProofOutcome proveNonInterference(TermContext &Ctx, Solver &Solv,
                                    const Program &P, const BehAbs &Abs,
                                    const Property &Prop, Deadline *Budget) {
  assert(!Prop.isTrace() && "not a non-interference property");
  NIProofOutcome Out;
  Out.Cert.ProgramName = P.Name;
  Out.Cert.PropertyName = Prop.Name;
  Out.Cert.Kind = "noninterference";

  if (Abs.incomplete()) {
    Out.Reason = "behavioral abstraction incomplete (symbolic execution "
                 "limits exceeded)";
    return Out;
  }

  NIEngine E(Ctx, Solv, P, Abs, Prop.niProp(), Out.Cert);
  E.setBudget(Budget);
  Out.Proved = E.run(Out.Reason);
  return Out;
}

} // namespace reflex
