//===- verify/footprint.cc - Proof footprints and fingerprints ------------===//

#include "verify/footprint.h"

#include "ast/printer.h"
#include "support/sha256.h"

#include <sstream>

namespace reflex {

std::string handlerKey(const std::string &CompType,
                       const std::string &MsgName) {
  return CompType + "=>" + MsgName;
}

std::string handlerKey(const Handler &H) {
  return handlerKey(H.CompType, H.MsgName);
}

namespace {

std::string hashHandlerBody(const Handler &H) {
  // Render exactly as printProgram does, so the body fingerprint is the
  // canonical-printed handler (roundtrip-stable, whitespace-normalized).
  std::ostringstream OS;
  OS << "handler " << H.CompType << " => " << H.MsgName << "(";
  for (size_t I = 0; I < H.Params.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << H.Params[I];
  }
  OS << ") {\n" << printCmd(*H.Body, 1) << "}\n";
  return sha256Hex(OS.str());
}

std::string hashHandlerIface(const Handler &H) {
  std::set<std::string> Sends, Spawns, Assigns;
  collectSentMessages(*H.Body, Sends);
  collectSpawnedTypes(*H.Body, Spawns);
  collectAssignedVars(*H.Body, Assigns);
  Sha256 Hash;
  Hash.updateField("sends");
  for (const std::string &S : Sends)
    Hash.updateField(S);
  Hash.updateField("spawns");
  for (const std::string &S : Spawns)
    Hash.updateField(S);
  Hash.updateField("assigns");
  for (const std::string &S : Assigns)
    Hash.updateField(S);
  return Hash.hexDigest();
}

} // namespace

ProgramFingerprints ProgramFingerprints::compute(const Program &P) {
  ProgramFingerprints Out;

  // Declarations: the printed program up to the first handler (or, for a
  // handler-free program, the first property). printProgram emits
  // sections in a fixed order with headers at line starts, so the cut is
  // unambiguous.
  std::string Printed = printProgram(P);
  size_t Cut = Printed.find("\nhandler ");
  if (Cut == std::string::npos)
    Cut = Printed.find("\nproperty ");
  if (Cut != std::string::npos)
    Printed.resize(Cut);
  Out.DeclFp = sha256Hex(Printed);

  Sha256 All;
  for (const Handler &H : P.Handlers) {
    HandlerFingerprint F;
    F.BodyFp = hashHandlerBody(H);
    F.IfaceFp = hashHandlerIface(H);
    std::string Key = handlerKey(H);
    All.updateField(Key);
    All.updateField(F.BodyFp);
    Out.Handlers.emplace(std::move(Key), std::move(F));
  }
  Out.HandlersFp = All.hexDigest();
  return Out;
}

FingerprintDelta
fingerprintDelta(const std::map<std::string, HandlerFingerprint> &Old,
                 const std::map<std::string, HandlerFingerprint> &New) {
  FingerprintDelta D;
  for (const auto &[Key, F] : Old) {
    auto It = New.find(Key);
    if (It == New.end()) {
      D.Changed.insert(Key);
      D.IfaceChanged = true; // a declared handler disappeared
    } else if (It->second.BodyFp != F.BodyFp) {
      D.Changed.insert(Key);
      D.IfaceChanged |= It->second.IfaceFp != F.IfaceFp;
    }
  }
  for (const auto &[Key, F] : New) {
    (void)F;
    if (!Old.count(Key)) {
      D.Changed.insert(Key);
      D.IfaceChanged = true; // a declared handler appeared
    }
  }
  return D;
}

bool footprintReusable(const ProofFootprint &FP, const FingerprintDelta &D) {
  if (D.empty())
    return true;
  if (!FP.Collected || FP.AllHandlers || D.IfaceChanged)
    return false;
  for (const std::string &Key : D.Changed)
    if (FP.Handlers.count(Key))
      return false;
  return true;
}

} // namespace reflex
