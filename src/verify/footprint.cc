//===- verify/footprint.cc - Proof footprints and fingerprints ------------===//

#include "verify/footprint.h"

#include "ast/printer.h"
#include "support/sha256.h"
#include "verify/behabs.h"

#include <sstream>

namespace reflex {

std::string handlerKey(const std::string &CompType,
                       const std::string &MsgName) {
  return CompType + "=>" + MsgName;
}

std::string handlerKey(const Handler &H) {
  return handlerKey(H.CompType, H.MsgName);
}

std::string encodeFootprintEntry(const std::string &Key,
                                 const HandlerFootprint &HF) {
  if (HF.AllPaths)
    return Key;
  std::string Out = Key + "@";
  bool First = true;
  for (const std::string &Id : HF.Entered) {
    if (!First)
      Out += ",";
    Out += Id;
    First = false;
  }
  return Out;
}

std::pair<std::string, HandlerFootprint>
decodeFootprintEntry(const std::string &Encoded) {
  HandlerFootprint HF;
  size_t At = Encoded.find('@');
  if (At == std::string::npos) {
    // Bare key: pre-path-granularity data (or an AllPaths consultation).
    // AllPaths is the conservative reading — it can only suppress reuse.
    HF.AllPaths = true;
    return {Encoded, std::move(HF)};
  }
  std::string Key = Encoded.substr(0, At);
  size_t Pos = At + 1;
  while (Pos < Encoded.size()) {
    size_t Comma = Encoded.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Encoded.size();
    if (Comma > Pos)
      HF.Entered.insert(Encoded.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return {std::move(Key), std::move(HF)};
}

std::vector<std::string>
encodeFootprintHandlers(const std::map<std::string, HandlerFootprint> &H) {
  std::vector<std::string> Out;
  Out.reserve(H.size());
  for (const auto &[Key, HF] : H)
    Out.push_back(encodeFootprintEntry(Key, HF));
  return Out;
}

std::map<std::string, HandlerFootprint>
decodeFootprintHandlers(const std::vector<std::string> &Encoded) {
  std::map<std::string, HandlerFootprint> Out;
  for (const std::string &E : Encoded) {
    auto [Key, HF] = decodeFootprintEntry(E);
    Out[Key].merge(HF);
  }
  return Out;
}

namespace {

std::string hashHandlerBody(const Handler &H) {
  // Render exactly as printProgram does, so the body fingerprint is the
  // canonical-printed handler (roundtrip-stable, whitespace-normalized).
  std::ostringstream OS;
  OS << "handler " << H.CompType << " => " << H.MsgName << "(";
  for (size_t I = 0; I < H.Params.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << H.Params[I];
  }
  OS << ") {\n" << printCmd(*H.Body, 1) << "}\n";
  return sha256Hex(OS.str());
}

std::string hashHandlerIface(const Handler &H) {
  std::set<std::string> Sends, Spawns, Assigns;
  collectSentMessages(*H.Body, Sends);
  collectSpawnedTypes(*H.Body, Spawns);
  collectAssignedVars(*H.Body, Assigns);
  Sha256 Hash;
  Hash.updateField("sends");
  for (const std::string &S : Sends)
    Hash.updateField(S);
  Hash.updateField("spawns");
  for (const std::string &S : Spawns)
    Hash.updateField(S);
  Hash.updateField("assigns");
  for (const std::string &S : Assigns)
    Hash.updateField(S);
  return Hash.hexDigest();
}

PathFingerprint fingerprintPath(const TermContext &Ctx, const SymPath &P) {
  PathFingerprint F;
  F.Id = P.PathId;

  Sha256 Emit;
  for (const SymAction &A : P.Emits)
    Emit.updateField(symActionStr(Ctx, A));
  F.EmitFp = Emit.hexDigest();

  Sha256 Full;
  Full.updateField(F.Id);
  Full.updateField(F.EmitFp);
  Full.updateField("cond");
  for (const Lit &L : P.Cond) {
    Full.updateField(L.Pos ? "+" : "-");
    Full.updateField(Ctx.str(L.Atom));
  }
  Full.updateField("updates");
  for (const auto &[Var, T] : P.Updates) {
    Full.updateField(Var);
    Full.updateField(Ctx.str(T));
  }
  Full.updateField("nocomp");
  for (const NoCompFact &N : P.NoComp) {
    Full.updateField(N.TypeName);
    for (const auto &[Index, Required] : N.Constraints) {
      Full.updateField(std::to_string(Index));
      Full.updateField(Ctx.str(Required));
    }
  }
  Full.updateField("found");
  for (TermRef T : P.FoundComps)
    Full.updateField(Ctx.str(T));
  Full.updateField("lookup");
  for (TermRef T : P.LookupComps)
    Full.updateField(Ctx.str(T));
  F.FullFp = Full.hexDigest();
  return F;
}

SummaryFingerprint fingerprintSummary(const TermContext &Ctx,
                                      const HandlerSummary &Sum) {
  SummaryFingerprint SF;
  SF.Incomplete = Sum.Incomplete;
  Sha256 Whole;
  Whole.updateField(Sum.IsDefault ? "default" : "declared");
  Whole.updateField(Sum.Incomplete ? "incomplete" : "complete");
  Whole.updateField(Sum.SenderComp ? Ctx.str(Sum.SenderComp) : "");
  Whole.updateField("params");
  for (TermRef T : Sum.Params)
    Whole.updateField(Ctx.str(T));
  Whole.updateField("paths");
  SF.Paths.reserve(Sum.Paths.size());
  for (const SymPath &P : Sum.Paths) {
    PathFingerprint F = fingerprintPath(Ctx, P);
    Whole.updateField(F.Id);
    Whole.updateField(F.FullFp);
    SF.Paths.push_back(std::move(F));
  }
  SF.SummaryFp = Whole.hexDigest();
  return SF;
}

} // namespace

PathFingerprints computePathFingerprints(const TermContext &Ctx,
                                         const BehAbs &Abs) {
  PathFingerprints Out;
  for (const HandlerSummary &Sum : Abs.Handlers)
    Out.emplace(handlerKey(Sum.CompType, Sum.MsgName),
                fingerprintSummary(Ctx, Sum));
  return Out;
}

std::string pathFingerprintsDigest(const PathFingerprints &PF) {
  Sha256 All;
  for (const auto &[Key, SF] : PF) {
    All.updateField(Key);
    All.updateField(SF.SummaryFp);
  }
  return All.hexDigest();
}

ProgramFingerprints ProgramFingerprints::compute(const Program &P) {
  ProgramFingerprints Out;

  // Declarations: the printed program up to the first handler (or, for a
  // handler-free program, the first property). printProgram emits
  // sections in a fixed order with headers at line starts, so the cut is
  // unambiguous.
  std::string Printed = printProgram(P);
  size_t Cut = Printed.find("\nhandler ");
  if (Cut == std::string::npos)
    Cut = Printed.find("\nproperty ");
  if (Cut != std::string::npos)
    Printed.resize(Cut);
  Out.DeclFp = sha256Hex(Printed);

  Sha256 All;
  for (const Handler &H : P.Handlers) {
    HandlerFingerprint F;
    F.BodyFp = hashHandlerBody(H);
    F.IfaceFp = hashHandlerIface(H);
    std::string Key = handlerKey(H);
    All.updateField(Key);
    All.updateField(F.BodyFp);
    Out.Handlers.emplace(std::move(Key), std::move(F));
  }
  Out.HandlersFp = All.hexDigest();
  return Out;
}

FingerprintDelta
fingerprintDelta(const std::map<std::string, HandlerFingerprint> &Old,
                 const std::map<std::string, HandlerFingerprint> &New) {
  FingerprintDelta D;
  for (const auto &[Key, F] : Old) {
    auto It = New.find(Key);
    if (It == New.end()) {
      D.Changed.insert(Key);
      D.IfaceChanged = true; // a declared handler disappeared
    } else if (It->second.BodyFp != F.BodyFp) {
      D.Changed.insert(Key);
      D.IfaceChanged |= It->second.IfaceFp != F.IfaceFp;
    }
  }
  for (const auto &[Key, F] : New) {
    (void)F;
    if (!Old.count(Key)) {
      D.Changed.insert(Key);
      D.IfaceChanged = true; // a declared handler appeared
    }
  }
  return D;
}

bool footprintReusable(const ProofFootprint &FP, const FingerprintDelta &D,
                       const PathFingerprints &OldPaths,
                       const PathFingerprints &NewPaths,
                       FootprintGranularity G) {
  if (D.empty())
    return true;
  if (!FP.Collected || FP.AllHandlers || D.IfaceChanged)
    return false;
  for (const auto &[Key, HF] : FP.Handlers) {
    auto OldIt = OldPaths.find(Key);
    auto NewIt = NewPaths.find(Key);
    if (OldIt == OldPaths.end() || NewIt == NewPaths.end())
      return false;
    const SummaryFingerprint &OldSum = OldIt->second;
    const SummaryFingerprint &NewSum = NewIt->second;
    // Rendered summary byte-identical: the proof's view of this handler
    // cannot have moved, whatever it consulted.
    if (OldSum.SummaryFp == NewSum.SummaryFp)
      continue;
    if (G == FootprintGranularity::Handler)
      return false;
    // Path-granular refinement. Truncated summaries have no meaningful
    // per-path identity; structural divergence (path count or arm-tag
    // sequence) means the edit reshaped the branch tree.
    if (OldSum.Incomplete || NewSum.Incomplete)
      return false;
    if (OldSum.Paths.size() != NewSum.Paths.size())
      return false;
    for (size_t I = 0; I < OldSum.Paths.size(); ++I) {
      const PathFingerprint &OldP = OldSum.Paths[I];
      const PathFingerprint &NewP = NewSum.Paths[I];
      if (OldP.Id != NewP.Id)
        return false;
      // Entered/not-entered is decided per path by pattern-matching the
      // emits, so any emit change anywhere flips no decision only if it
      // doesn't exist: require every path's emit structure unchanged.
      if (OldP.EmitFp != NewP.EmitFp)
        return false;
      // The full path content matters only where the proof looked.
      if ((HF.AllPaths || HF.Entered.count(OldP.Id)) &&
          OldP.FullFp != NewP.FullFp)
        return false;
    }
  }
  return true;
}

} // namespace reflex
