//===- verify/symexec.cc - Symbolic evaluation of handlers ------*- C++ -*-===//

#include "verify/symexec.h"

#include "sym/symeval.h"

#include <cassert>

namespace reflex {

namespace {

/// Mutable state threaded through one symbolic path.
struct PathState {
  SymEnv Env;
  std::vector<Lit> Cond;
  std::vector<SymAction> Emits;
  std::vector<NoCompFact> NoComp;
  std::vector<TermRef> FoundComps;
  std::vector<TermRef> LookupComps;
  /// Component types spawned so far on this path (a later lookup of such a
  /// type may find the new component: FlexAny).
  std::set<std::string> SpawnedTypes;
  /// Arm-tag chain accumulated so far (see SymPath::PathId); empty until
  /// the first branch.
  std::string PathId;
};

/// Extends an arm-tag chain with one more branch-arm tag.
static std::string appendArmTag(const std::string &Chain, const char *Tag) {
  return Chain.empty() ? std::string(Tag) : Chain + "." + Tag;
}

class SymExecutor {
public:
  SymExecutor(TermContext &Ctx, const Program &P, const SymExecLimits &Limits,
              bool InInit)
      : Ctx(Ctx), P(P), Limits(Limits), InInit(InInit) {}

  bool Overflowed = false;

  std::vector<PathState> exec(const Cmd &C, PathState St) {
    std::vector<PathState> Out;
    execInto(C, std::move(St), Out);
    if (Out.size() > Limits.MaxPaths) {
      Overflowed = true;
      Out.resize(Limits.MaxPaths);
    }
    return Out;
  }

  /// Component globals bound during init execution (InitRigid terms).
  std::map<std::string, TermRef> InitComps;

private:
  void execInto(const Cmd &C, PathState St, std::vector<PathState> &Out) {
    // Budget expiry degrades exactly like a blown path cap: the summary
    // is marked Incomplete and the prover answers Unknown.
    if (!Overflowed && Limits.Budget && Limits.Budget->expired())
      Overflowed = true;
    if (Overflowed) {
      Out.push_back(std::move(St));
      return;
    }
    switch (C.kind()) {
    case Cmd::Nop:
      Out.push_back(std::move(St));
      return;

    case Cmd::Block: {
      const auto &Blk = castCmd<BlockCmd>(C);
      std::vector<PathState> Cur;
      Cur.push_back(std::move(St));
      for (const CmdPtr &Sub : Blk.commands()) {
        std::vector<PathState> Next;
        for (PathState &PS : Cur)
          execInto(*Sub, std::move(PS), Next);
        Cur = std::move(Next);
        if (Cur.size() > Limits.MaxPaths) {
          Overflowed = true;
          Cur.resize(Limits.MaxPaths);
        }
      }
      for (PathState &PS : Cur)
        Out.push_back(std::move(PS));
      return;
    }

    case Cmd::Assign: {
      const auto &A = castCmd<AssignCmd>(C);
      St.Env.Vars[A.var()] = symEvalExpr(Ctx, A.rhs(), St.Env);
      Out.push_back(std::move(St));
      return;
    }

    case Cmd::If: {
      const auto &If = castCmd<IfCmd>(C);
      TermRef Cond = symEvalExpr(Ctx, If.cond(), St.Env);
      auto ThenSplit = splitCondDNF(Cond, true, Limits.MaxDisjuncts);
      auto ElseSplit = splitCondDNF(Cond, false, Limits.MaxDisjuncts);
      if (!ThenSplit || !ElseSplit) {
        Overflowed = true;
        Out.push_back(std::move(St));
        return;
      }
      for (const std::vector<Lit> &Disjunct : *ThenSplit) {
        PathState Branch = St;
        Branch.Cond.insert(Branch.Cond.end(), Disjunct.begin(),
                           Disjunct.end());
        Branch.PathId = appendArmTag(St.PathId, "t");
        execInto(If.thenCmd(), std::move(Branch), Out);
      }
      for (const std::vector<Lit> &Disjunct : *ElseSplit) {
        PathState Branch = St;
        Branch.Cond.insert(Branch.Cond.end(), Disjunct.begin(),
                           Disjunct.end());
        Branch.PathId = appendArmTag(St.PathId, "e");
        execInto(If.elseCmd(), std::move(Branch), Out);
      }
      return;
    }

    case Cmd::Send: {
      const auto &S = castCmd<SendCmd>(C);
      SymAction A;
      A.Kind = SymAction::Send;
      A.Comp = symEvalExpr(Ctx, S.target(), St.Env);
      A.MsgName = S.msgName();
      for (const ExprPtr &Arg : S.args())
        A.Args.push_back(symEvalExpr(Ctx, *Arg, St.Env));
      St.Emits.push_back(std::move(A));
      Out.push_back(std::move(St));
      return;
    }

    case Cmd::Spawn: {
      const auto &S = castCmd<SpawnCmd>(C);
      std::vector<TermRef> Config;
      for (const ExprPtr &Arg : S.config())
        Config.push_back(symEvalExpr(Ctx, *Arg, St.Env));
      CompIdent Ident = InInit ? CompIdent::InitRigid : CompIdent::NewRigid;
      TermRef Comp = Ctx.comp(S.compType(), Ident, Ctx.freshCompSerial(),
                              std::move(Config));
      St.Env.Vars[S.bind()] = Comp;
      if (InInit && P.findCompGlobal(S.bind()))
        InitComps[S.bind()] = Comp;
      SymAction A;
      A.Kind = SymAction::Spawn;
      A.Comp = Comp;
      St.Emits.push_back(std::move(A));
      St.SpawnedTypes.insert(S.compType());
      Out.push_back(std::move(St));
      return;
    }

    case Cmd::Call: {
      const auto &Call = castCmd<CallCmd>(C);
      SymAction A;
      A.Kind = SymAction::Call;
      A.CallFn = Call.fn();
      for (const ExprPtr &Arg : Call.args())
        A.Args.push_back(symEvalExpr(Ctx, *Arg, St.Env));
      TermRef Result = Ctx.freshSym("call." + Call.fn(), BaseType::Str);
      A.CallResult = Result;
      St.Env.Vars[Call.bind()] = Result;
      St.Emits.push_back(std::move(A));
      Out.push_back(std::move(St));
      return;
    }

    case Cmd::Lookup: {
      const auto &L = castCmd<LookupCmd>(C);
      const ComponentTypeDecl *CT = P.findComponentType(L.compType());
      assert(CT && "unvalidated program");

      // Evaluate constraint expressions once, in the pre-branch state.
      std::vector<std::pair<int, TermRef>> Constraints;
      for (const LookupConstraint &LC : L.constraints()) {
        assert(LC.FieldIndex >= 0);
        Constraints.emplace_back(LC.FieldIndex,
                                 symEvalExpr(Ctx, *LC.Expr, St.Env));
      }

      // Found branch: bind a component of the type with fresh config
      // fields constrained per the lookup predicate.
      {
        PathState Found = St;
        std::vector<TermRef> Fields;
        for (const ConfigField &F : CT->Config)
          Fields.push_back(
              Ctx.freshSym("lookup." + L.compType() + "." + F.Name, F.Type));
        CompIdent Ident = St.SpawnedTypes.count(L.compType())
                              ? CompIdent::FlexAny
                              : CompIdent::FlexPre;
        TermRef Comp = Ctx.comp(L.compType(), Ident, Ctx.freshCompSerial(),
                                std::move(Fields));
        for (const auto &[Index, Required] : Constraints)
          Found.Cond.emplace_back(Ctx.eq(Comp->Ops[Index], Required), true);
        Found.Env.Vars[L.bind()] = Comp;
        if (Ident == CompIdent::FlexPre)
          Found.FoundComps.push_back(Comp);
        Found.LookupComps.push_back(Comp);
        Found.PathId = appendArmTag(St.PathId, "f");
        execInto(L.thenCmd(), std::move(Found), Out);
      }

      // Not-found branch: record the universal negative fact.
      {
        PathState Missing = St;
        NoCompFact Fact;
        Fact.TypeName = L.compType();
        Fact.Constraints = Constraints;
        Missing.NoComp.push_back(std::move(Fact));
        Missing.PathId = appendArmTag(St.PathId, "m");
        execInto(L.elseCmd(), std::move(Missing), Out);
      }
      return;
    }
    }
  }

  TermContext &Ctx;
  const Program &P;
  SymExecLimits Limits;
  bool InInit;
};

/// Converts final path states into SymPaths, computing Updates relative to
/// the pre-state mapping \p PreVars.
std::vector<SymPath>
finishPaths(std::vector<PathState> States,
            const std::map<std::string, TermRef> &PreVars) {
  std::vector<SymPath> Paths;
  Paths.reserve(States.size());
  for (PathState &St : States) {
    SymPath Path;
    // Branch-free bodies get the distinguished root id so the encoded
    // footprint never contains an empty path id.
    Path.PathId = St.PathId.empty() ? "r" : std::move(St.PathId);
    Path.Cond = std::move(St.Cond);
    Path.Emits = std::move(St.Emits);
    Path.NoComp = std::move(St.NoComp);
    Path.FoundComps = std::move(St.FoundComps);
    Path.LookupComps = std::move(St.LookupComps);
    for (const auto &[Var, Pre] : PreVars) {
      auto It = St.Env.Vars.find(Var);
      assert(It != St.Env.Vars.end());
      if (It->second != Pre)
        Path.Updates[Var] = It->second;
    }
    Paths.push_back(std::move(Path));
  }
  return Paths;
}

} // namespace

InitSummary summarizeInit(TermContext &Ctx, const Program &P,
                          const SymExecLimits &Limits) {
  InitSummary Summary;
  SymExecutor Exec(Ctx, P, Limits, /*InInit=*/true);

  PathState St;
  // In init, every state variable starts at its declared literal; the
  // pre-state map uses an impossible sentinel so every variable appears in
  // Updates (the invariant base case needs the full init valuation).
  std::map<std::string, TermRef> PreVars;
  for (const StateVarDecl &V : P.StateVars) {
    St.Env.Vars[V.Name] = Ctx.lit(V.Init);
    PreVars[V.Name] = nullptr; // sentinel: always report in Updates
  }

  std::vector<PathState> Final =
      P.Init ? Exec.exec(*P.Init, std::move(St))
             : std::vector<PathState>{std::move(St)};
  Summary.Incomplete = Exec.Overflowed;
  Summary.CompGlobals = std::move(Exec.InitComps);
  Summary.Paths = finishPaths(std::move(Final), PreVars);
  return Summary;
}

HandlerSummary
summarizeHandler(TermContext &Ctx, const Program &P, const Handler &H,
                 const std::map<std::string, TermRef> &InitComps,
                 const SymExecLimits &Limits) {
  HandlerSummary Summary;
  Summary.CompType = H.CompType;
  Summary.MsgName = H.MsgName;

  const ComponentTypeDecl *CT = P.findComponentType(H.CompType);
  const MessageDecl *MD = P.findMessage(H.MsgName);
  assert(CT && MD && "unvalidated program");

  // The sender: an unknown pre-existing component of the handler's type.
  std::vector<TermRef> SenderFields;
  for (const ConfigField &F : CT->Config)
    SenderFields.push_back(
        Ctx.freshSym("sender." + H.CompType + "." + F.Name, F.Type));
  Summary.SenderComp = Ctx.comp(H.CompType, CompIdent::FlexPre,
                                Ctx.freshCompSerial(),
                                std::move(SenderFields));

  PathState St;
  St.Env.Sender = Summary.SenderComp;
  // The sender is itself a pre-existing component: it was selected from
  // the live set, so a Spawn action for it occurs somewhere in the trace
  // (the component-origin axiom applies to it like to lookup results).
  St.FoundComps.push_back(Summary.SenderComp);

  // Pre-state: one canonical symbol per state variable (shared across all
  // summaries, which is what lets the invariant engine substitute updates).
  std::map<std::string, TermRef> PreVars;
  for (const StateVarDecl &V : P.StateVars) {
    TermRef Sym = Ctx.stateSym(V.Name, V.Type);
    St.Env.Vars[V.Name] = Sym;
    PreVars[V.Name] = Sym;
  }
  for (const auto &[Name, Comp] : InitComps)
    St.Env.Vars[Name] = Comp;

  // Message parameters: fresh symbols.
  for (size_t I = 0; I < H.Params.size(); ++I) {
    TermRef Sym = Ctx.freshSym("arg." + H.MsgName + "." + H.Params[I],
                               MD->Payload[I]);
    Summary.Params.push_back(Sym);
    if (H.Params[I] != "_")
      St.Env.Vars[H.Params[I]] = Sym;
  }

  // Every path begins with the Select and Recv of the serviced message.
  SymAction Sel;
  Sel.Kind = SymAction::Select;
  Sel.Comp = Summary.SenderComp;
  St.Emits.push_back(Sel);
  SymAction Rcv;
  Rcv.Kind = SymAction::Recv;
  Rcv.Comp = Summary.SenderComp;
  Rcv.MsgName = H.MsgName;
  Rcv.Args = Summary.Params;
  St.Emits.push_back(std::move(Rcv));

  SymExecutor Exec(Ctx, P, Limits, /*InInit=*/false);
  std::vector<PathState> Final = Exec.exec(*H.Body, std::move(St));
  Summary.Incomplete = Exec.Overflowed;
  Summary.Paths = finishPaths(std::move(Final), PreVars);
  return Summary;
}

HandlerSummary makeDefaultSummary(TermContext &Ctx, const Program &P,
                                  const std::string &CompType,
                                  const std::string &MsgName) {
  HandlerSummary Summary;
  Summary.CompType = CompType;
  Summary.MsgName = MsgName;
  Summary.IsDefault = true;

  const ComponentTypeDecl *CT = P.findComponentType(CompType);
  const MessageDecl *MD = P.findMessage(MsgName);
  assert(CT && MD && "unvalidated program");

  std::vector<TermRef> SenderFields;
  for (const ConfigField &F : CT->Config)
    SenderFields.push_back(
        Ctx.freshSym("sender." + CompType + "." + F.Name, F.Type));
  Summary.SenderComp = Ctx.comp(CompType, CompIdent::FlexPre,
                                Ctx.freshCompSerial(),
                                std::move(SenderFields));
  for (size_t I = 0; I < MD->Payload.size(); ++I)
    Summary.Params.push_back(
        Ctx.freshSym("arg." + MsgName, MD->Payload[I]));

  SymPath Path;
  Path.PathId = "r";
  SymAction Sel;
  Sel.Kind = SymAction::Select;
  Sel.Comp = Summary.SenderComp;
  Path.Emits.push_back(Sel);
  SymAction Rcv;
  Rcv.Kind = SymAction::Recv;
  Rcv.Comp = Summary.SenderComp;
  Rcv.MsgName = MsgName;
  Rcv.Args = Summary.Params;
  Path.Emits.push_back(std::move(Rcv));
  Summary.Paths.push_back(std::move(Path));
  return Summary;
}

} // namespace reflex
