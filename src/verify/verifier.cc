//===- verify/verifier.cc - Verification facade -----------------*- C++ -*-===//

#include "verify/verifier.h"

#include "support/json.h"
#include "support/timer.h"
#include "verify/pdr.h"

#include <thread>

namespace reflex {

const char *verifyStatusName(VerifyStatus S) {
  switch (S) {
  case VerifyStatus::Proved:
    return "Proved";
  case VerifyStatus::Refuted:
    return "Refuted";
  case VerifyStatus::Unknown:
    return "Unknown";
  case VerifyStatus::Timeout:
    return "Timeout";
  case VerifyStatus::ResourceExhausted:
    return "ResourceExhausted";
  case VerifyStatus::Aborted:
    return "Aborted";
  }
  return "?";
}

bool isBudgetStatus(VerifyStatus S) {
  return S == VerifyStatus::Timeout || S == VerifyStatus::ResourceExhausted ||
         S == VerifyStatus::Aborted;
}

namespace {

VerifyStatus statusForOutcome(BudgetOutcome O) {
  switch (O) {
  case BudgetOutcome::Timeout:
    return VerifyStatus::Timeout;
  case BudgetOutcome::ResourceExhausted:
    return VerifyStatus::ResourceExhausted;
  case BudgetOutcome::Aborted:
    return VerifyStatus::Aborted;
  case BudgetOutcome::Ok:
    break;
  }
  return VerifyStatus::Unknown;
}

void armDeadline(Deadline &D, const VerifyOptions &Opts) {
  D.setWallMillis(Opts.TimeoutMillis);
  D.setStepBudget(Opts.StepBudget);
  if (Opts.Cancel)
    D.setCancelFlag(Opts.Cancel);
}

} // namespace

bool VerificationReport::allProved() const {
  for (const PropertyResult &R : Results)
    if (R.Status != VerifyStatus::Proved)
      return false;
  return !Results.empty();
}

unsigned VerificationReport::provedCount() const {
  unsigned N = 0;
  for (const PropertyResult &R : Results)
    if (R.Status == VerifyStatus::Proved)
      ++N;
  return N;
}

const PropertyResult *
VerificationReport::find(const std::string &Name) const {
  for (const PropertyResult &R : Results)
    if (R.Name == Name)
      return &R;
  return nullptr;
}

std::string VerificationReport::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.field("program", ProgramName);
  W.key("properties");
  W.beginArray();
  for (const PropertyResult &R : Results) {
    W.beginObject();
    W.field("name", R.Name);
    W.field("status", verifyStatusName(R.Status));
    W.key("millis");
    W.value(R.Millis);
    if (R.Status == VerifyStatus::Proved) {
      W.field("cert_checked", R.CertChecked);
      // Audit trail for proof-cache hits: which re-validation accepted
      // the entry (full obligation replay vs the fast hash-chain check).
      if (R.CacheHit)
        W.field("recheck", R.FastRecheck   ? "fast"
                           : R.CertChecked ? "full"
                                           : "none");
    } else {
      W.field("reason", R.Reason);
    }
    // Footprint-relative hits: served from an entry stored for an edited
    // version of the program (verify/footprint.h).
    if (R.FootprintHit)
      W.field("footprint_relative", true);
    if (R.Attempts > 1)
      W.field("attempts", static_cast<int64_t>(R.Attempts));
    if (!R.ServedBy.empty())
      W.field("engine", R.ServedBy);
    W.endObject();
  }
  W.endArray();
  W.key("total_millis");
  W.value(TotalMillis);
  W.field("terms", static_cast<int64_t>(TermCount));
  W.field("solver_queries", static_cast<int64_t>(SolverQueries));
  W.field("solver_memo_hits", static_cast<int64_t>(SolverMemoHits));
  W.field("solver_assumption_checks",
          static_cast<int64_t>(SolverAssumptionChecks));
  W.field("solver_trail_undos", static_cast<int64_t>(SolverTrailUndos));
  if (SolverReasonLogBytes)
    W.field("solver_reason_log_bytes",
            static_cast<int64_t>(SolverReasonLogBytes));
  if (ProofCacheHits || ProofCacheMisses) {
    W.field("proof_cache_hits", static_cast<int64_t>(ProofCacheHits));
    W.field("proof_cache_misses", static_cast<int64_t>(ProofCacheMisses));
  }
  if (FootprintHits)
    W.field("footprint_hits", static_cast<int64_t>(FootprintHits));
  if (PathHits || PathFallbacks) {
    W.field("path_hits", static_cast<int64_t>(PathHits));
    W.field("path_fallbacks", static_cast<int64_t>(PathFallbacks));
  }
  W.endObject();
  return W.take();
}

FrozenAbstraction::FrozenAbstraction(const Program &P,
                                     const VerifyOptions &Opts)
    : P(P), Opts(Opts) {
  Ctx.setSimplify(Opts.Simplify);
  // The abstraction build gets its own budget token with the session's
  // limits; the summaries degrade to Incomplete on expiry, and the
  // latched outcome short-circuits every later verify() call.
  Deadline BuildD;
  armDeadline(BuildD, Opts);
  SymExecLimits Limits = Opts.Limits;
  Limits.Budget = BuildD.active() ? &BuildD : nullptr;
  Abs = buildBehAbs(Ctx, P, Limits);
  Outcome = BuildD.outcome();
  if (Outcome != BudgetOutcome::Ok)
    Reason = "behavioral abstraction build abandoned: " + BuildD.describe();
  // Widen the frozen base with the terms every property proof touches, so
  // they are shared (and shared-cache-eligible) rather than re-created in
  // each worker's overlay: the boolean literals and the pattern-variable
  // symbols of the trace properties. Invariant records bind pattern
  // symbols and abstraction terms, so this makes them base-pure.
  Ctx.boolLit(true);
  Ctx.boolLit(false);
  for (const Property &Prop : P.Properties) {
    if (!Prop.isTrace())
      continue;
    const TraceProperty &TP = Prop.traceProp();
    std::map<std::string, BaseType> VarTypes;
    collectPatVarTypes(P, TP.A, VarTypes);
    collectPatVarTypes(P, TP.B, VarTypes);
    for (const auto &[Name, Ty] : VarTypes)
      Ctx.patSym(Name, Ty);
  }
  // From here on the context is immutable; sessions allocate in overlays.
  Ctx.freeze();
}

std::shared_ptr<const FrozenAbstraction>
FrozenAbstraction::build(const Program &P, const VerifyOptions &Opts) {
  return std::shared_ptr<const FrozenAbstraction>(
      new FrozenAbstraction(P, Opts));
}

struct VerifySession::Impl {
  Impl(std::shared_ptr<const FrozenAbstraction> FrozenIn,
       SharedVerifyCaches *Shared)
      : Frozen(std::move(FrozenIn)), P(Frozen->program()),
        Opts(Frozen->options()), Ctx(&Frozen->context()), Solv(Ctx),
        Abs(Frozen->behAbs()), BuildOutcome(Frozen->buildOutcome()),
        BuildReason(Frozen->buildReason()) {
    Solv.setMemoEnabled(Opts.CacheInvariants);
    this->Shared = Shared;
    if (Shared) {
      Solv.setSharedMemo(&Shared->SolverMemo);
      Cache.Shared = &Shared->Invariants;
    }
  }

  std::shared_ptr<const FrozenAbstraction> Frozen;
  const Program &P;
  VerifyOptions Opts;
  TermContext Ctx; ///< this session's overlay over the frozen base
  Solver Solv;
  const BehAbs &Abs;
  InvariantCache Cache;
  BudgetOutcome BuildOutcome = BudgetOutcome::Ok;
  std::string BuildReason;
  /// The cross-worker cache tiers this session was attached to (if any);
  /// remembered so the portfolio race can attach its PDR session to the
  /// same tiers.
  SharedVerifyCaches *Shared = nullptr;
};

VerifySession::VerifySession(const Program &P, const VerifyOptions &Opts)
    : I(std::make_unique<Impl>(FrozenAbstraction::build(P, Opts), nullptr)) {}

VerifySession::VerifySession(std::shared_ptr<const FrozenAbstraction> Abs,
                             SharedVerifyCaches *Shared)
    : I(std::make_unique<Impl>(std::move(Abs), Shared)) {}

VerifySession::~VerifySession() = default;

TermContext &VerifySession::termContext() { return I->Ctx; }
const BehAbs &VerifySession::behAbs() const { return I->Abs; }
const Program &VerifySession::program() const { return I->P; }
const VerifyOptions &VerifySession::options() const { return I->Opts; }
uint64_t VerifySession::solverQueries() const { return I->Solv.queriesSolved(); }
uint64_t VerifySession::invariantCacheHits() const { return I->Cache.Hits; }
const SolverStats &VerifySession::solverStats() const {
  return I->Solv.stats();
}

ProverOptions proverOptions(const VerifyOptions &Opts) {
  ProverOptions POpts;
  POpts.SyntacticSkip = Opts.SyntacticSkip;
  POpts.CacheInvariants = Opts.CacheInvariants;
  return POpts;
}

PropertyResult VerifySession::verify(const Property &Prop) {
  Deadline D;
  armDeadline(D, I->Opts);
  return verify(Prop, D);
}

PropertyResult VerifySession::verify(const Property &Prop, Deadline &D) {
  EngineKind Eng = I->Opts.Engine;
  // NI has a single prover (§5.2); the engine selection concerns trace
  // properties only.
  if (!Prop.isTrace())
    Eng = EngineKind::Induction;
  if (Eng == EngineKind::Portfolio)
    return verifyPortfolio(Prop, D);
  return verifyOne(Prop, D, Eng);
}

PropertyResult VerifySession::verifyOne(const Property &Prop, Deadline &D,
                                        EngineKind Eng) {
  PropertyResult R;
  R.Name = Prop.Name;
  R.ServedBy = servingEngineName(Eng);
  WallTimer Timer;

  // A budget that ran out while the abstraction was being built ends
  // every attempt before it starts: there is nothing sound to prove
  // against, and the outcome is already known.
  if (I->BuildOutcome != BudgetOutcome::Ok) {
    R.Status = statusForOutcome(I->BuildOutcome);
    R.Reason = I->BuildReason;
    R.Millis = Timer.elapsedMillis();
    return R;
  }

  ProverOptions POpts = proverOptions(I->Opts);
  if (D.active()) {
    POpts.Budget = &D;
    I->Solv.setDeadline(&D);
  }

  bool Proved = false;
  bool Refuted = false;
  std::string Reason;
  Certificate Cert;
  if (Prop.isTrace() && Eng == EngineKind::Pdr) {
    POpts.Footprint = &R.Footprint;
    PdrOutcome Out = provePdrProperty(I->Ctx, I->Solv, I->P, I->Abs, Prop,
                                      POpts);
    Proved = Out.Proved;
    Refuted = Out.Refuted;
    Reason = std::move(Out.Reason);
    Cert = std::move(Out.Cert);
    if (Refuted)
      R.Counterexample = std::move(Out.Counterexample);
  } else if (Prop.isTrace()) {
    POpts.Footprint = &R.Footprint;
    TraceProofOutcome Out = proveTraceProperty(I->Ctx, I->Solv, I->P, I->Abs,
                                               Prop, POpts, I->Cache);
    Proved = Out.Proved;
    Reason = std::move(Out.Reason);
    Cert = std::move(Out.Cert);
  } else {
    NIProofOutcome Out = proveNonInterference(I->Ctx, I->Solv, I->P, I->Abs,
                                              Prop, POpts.Budget);
    Proved = Out.Proved;
    Reason = std::move(Out.Reason);
    Cert = std::move(Out.Cert);
    // NI processes every handler summary, and its label analysis scans
    // every handler body (spawn reachability); only the conservative
    // all-handlers footprint is sound.
    R.Footprint.Collected = true;
    R.Footprint.AllHandlers = true;
  }
  I->Solv.setDeadline(nullptr);
  // The checker re-derivation below runs unbudgeted: a Proved outcome
  // means the derivation completed within budget, so re-running it
  // terminates, and budgeting it would turn near-edge expiries into
  // spurious "certificate rejected" verdicts.
  POpts.Budget = nullptr;

  if (Proved) {
    R.Status = VerifyStatus::Proved;
    R.Cert = std::move(Cert);
    if (I->Opts.CheckCertificates) {
      CheckOutcome Chk =
          checkCertificate(I->Ctx, I->P, I->Abs, Prop, R.Cert, POpts);
      R.CertChecked = Chk.Ok;
      if (!Chk.Ok) {
        // A certificate the checker rejects is not a proof.
        R.Status = VerifyStatus::Unknown;
        R.Reason = "certificate rejected: " + Chk.Why;
      } else {
        // Adopt the checker's validated solver log: the audit JSON then
        // matches a proof-cache re-admission byte for byte (both sides
        // render the same deterministic re-derivation).
        R.Cert.SolverLog = std::move(Chk.SolverLog);
      }
    }
    if (R.Status == VerifyStatus::Proved) {
      // Export now, while this session's term context is alive: the JSON
      // is the form that may outlive the session (scheduler merges,
      // incremental verdict reuse, proof-cache entries). The audit JSON
      // carries the footprint ("*" = all handlers; otherwise the
      // path-granular "key@id1,id2" encoding of verify/footprint.h).
      if (R.Footprint.Collected)
        R.Cert.Footprint =
            R.Footprint.AllHandlers
                ? std::vector<std::string>{"*"}
                : encodeFootprintHandlers(R.Footprint.Handlers);
      R.CertJson = R.Cert.toJson(I->Ctx);
    }
  } else if (Refuted) {
    // PDR's refutations are believed only after a concrete replay
    // (verify/pdr.h), so this is as sound as a BMC Refuted — and carries
    // the same all-handlers footprint, already set by the engine.
    R.Status = VerifyStatus::Refuted;
    R.Reason = std::move(Reason);
  } else if (D.expiredNow()) {
    // Not a verdict: the budget ended the attempt. No certificate, no
    // BMC refutation search (it would burn time the caller said we do
    // not have). The reason mentions only the configured limit, so
    // reports compare equal across worker counts. Budget statuses are
    // never reused, so they carry no footprint.
    R.Status = statusForOutcome(D.outcome());
    R.Reason = "verification budget exhausted: " + D.describe();
    R.Footprint = ProofFootprint();
  } else {
    R.Status = VerifyStatus::Unknown;
    R.Reason = std::move(Reason);
    if (I->Opts.BmcDepthOnUnknown > 0 && Prop.isTrace()) {
      BmcOptions BOpts = I->Opts.Bmc;
      BOpts.MaxDepth = I->Opts.BmcDepthOnUnknown;
      BmcResult B = bmcSearch(I->P, Prop, BOpts);
      if (B.Violated) {
        R.Status = VerifyStatus::Refuted;
        R.Reason = B.Explanation;
        R.Counterexample = std::move(B.Counterexample);
      }
      // Refuted or not, the BMC searched the concrete semantics of the
      // whole program: the verdict now depends on every handler.
      R.Footprint.Collected = true;
      R.Footprint.AllHandlers = true;
      R.Footprint.Handlers.clear();
    }
  }
  R.Millis = Timer.elapsedMillis();
  return R;
}

PropertyResult VerifySession::verifyPortfolio(const Property &Prop,
                                              Deadline &D) {
  // The race: PDR runs on a second thread over its own session (private
  // overlay context and solver — the frozen base and the shared cache
  // tiers are the only cross-thread state, both designed for this), while
  // induction runs here. The raced PDR attempt is a *prefetch*: its
  // verdict decides whether the caller consults PDR at all, and its
  // queries warm the shared solver memo, but the served PDR result is
  // materialized in this session so its certificate terms live in this
  // session's context (PropertyResult::Cert's lifetime contract).
  // Selection follows the canonical priority rule of verify/engine.h, so
  // the verdict is a function of (program, property, options) only.
  auto PdrCancel = std::make_shared<CancelFlag>();
  VerifyStatus RacedStatus = VerifyStatus::Unknown;
  std::thread Racer([this, &Prop, &PdrCancel, &RacedStatus] {
    VerifySession PdrS(I->Frozen, I->Shared);
    PdrS.I->Opts.Engine = EngineKind::Pdr;
    PdrS.I->Opts.Cancel = PdrCancel;
    Deadline PdrD;
    armDeadline(PdrD, PdrS.I->Opts);
    RacedStatus = PdrS.verifyOne(Prop, PdrD, EngineKind::Pdr).Status;
  });

  PropertyResult IndR = verifyOne(Prop, D, EngineKind::Induction);
  if (IndR.Status == VerifyStatus::Proved || isBudgetStatus(IndR.Status)) {
    // Induction's sound verdict wins by priority — whatever PDR is still
    // computing cannot be selected. A budget status likewise ends the
    // attempt (not a verdict, for portfolio exactly as for a single
    // engine); either way the racer's result is moot, so cancel it.
    PdrCancel->cancel();
    Racer.join();
    return IndR;
  }
  Racer.join();

  if (RacedStatus == VerifyStatus::Proved ||
      RacedStatus == VerifyStatus::Refuted ||
      isBudgetStatus(RacedStatus)) {
    // PDR has (or, under a racer-side budget expiry, may have) a sound
    // verdict induction lacks: re-derive it deterministically in this
    // session. The raced attempt already warmed the shared memo, so the
    // replay is mostly cache hits.
    PropertyResult PdrR = verifyOne(Prop, D, EngineKind::Pdr);
    if (PdrR.Status == VerifyStatus::Proved ||
        PdrR.Status == VerifyStatus::Refuted || isBudgetStatus(PdrR.Status))
      return PdrR;
  }
  // Neither engine is sound here: induction's Unknown (with its BMC
  // fallback already applied) is the more actionable diagnostic.
  return IndR;
}

VerificationReport VerifySession::verifyAll() {
  VerificationReport Report;
  Report.ProgramName = I->P.Name;
  WallTimer Timer;
  for (const Property &Prop : I->P.Properties)
    Report.Results.push_back(verify(Prop));
  Report.TotalMillis = Timer.elapsedMillis();
  Report.TermCount = I->Ctx.termCount();
  Report.SolverQueries = I->Solv.queriesSolved();
  Report.InvariantCacheHits = I->Cache.Hits;
  const SolverStats &SS = I->Solv.stats();
  Report.SolverMemoHits = SS.MemoHits + SS.SharedMemoHits;
  Report.SolverAssumptionChecks = SS.AssumptionChecks;
  Report.SolverTrailUndos = SS.TrailUndos;
  Report.SolverReasonLogBytes = SS.ReasonLogBytes;
  return Report;
}

VerificationReport verifyProgram(const Program &P,
                                 const VerifyOptions &Opts) {
  VerifySession Session(P, Opts);
  return Session.verifyAll();
}

} // namespace reflex
