//===- verify/symexec.h - Symbolic evaluation of handlers -------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive symbolic execution of loop-free handler bodies into path
/// summaries (see verify/symstate.h). This is the mechanism the paper's
/// tactics rely on: "handlers were designed to be loop free, enabling
/// Reflex tactics to easily symbolically evaluate all execution paths of a
/// handler" (§7, principle B).
///
/// Nondeterminism from `call` primitives is modeled by fresh symbols —
/// the exact counterpart of the paper's "nondeterministic context" trees
/// (§4.2): one fresh symbol per call site on each path, following the
/// structure of the handler's code.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_SYMEXEC_H
#define REFLEX_VERIFY_SYMEXEC_H

#include "ast/program.h"
#include "support/deadline.h"
#include "verify/symstate.h"

namespace reflex {

/// Limits for symbolic execution. MaxDisjuncts caps DNF splitting of
/// branch conditions; MaxPaths caps the number of paths per handler.
/// Exceeding either marks the summary Incomplete (prover answers Unknown).
struct SymExecLimits {
  size_t MaxDisjuncts = 64;
  size_t MaxPaths = 4096;
  /// Optional cooperative budget for the abstraction build, polled once
  /// per symbolically executed command. Expiry marks the summary
  /// Incomplete, exactly like blowing a path cap. Caller-owned; the
  /// verifier session installs its own token here (see
  /// VerifySession::Impl), so user-supplied VerifyOptions leave it null.
  Deadline *Budget = nullptr;
};

/// Summarizes the init section. \p P must be validated.
InitSummary summarizeInit(TermContext &Ctx, const Program &P,
                          const SymExecLimits &Limits = {});

/// Summarizes the declared handler \p H. \p InitComps supplies the
/// component-global terms produced by summarizeInit.
HandlerSummary
summarizeHandler(TermContext &Ctx, const Program &P, const Handler &H,
                 const std::map<std::string, TermRef> &InitComps,
                 const SymExecLimits &Limits = {});

/// Summary for an exchange case with no declared handler: the kernel
/// receives the message and sends no response (paper §2: "the kernel
/// simply sends no response and returns to its event processing loop").
HandlerSummary makeDefaultSummary(TermContext &Ctx, const Program &P,
                                  const std::string &CompType,
                                  const std::string &MsgName);

} // namespace reflex

#endif // REFLEX_VERIFY_SYMEXEC_H
