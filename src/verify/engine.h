//===- verify/engine.h - Proof-engine selection -----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof-engine abstraction behind `--engine`. The service is a
/// multi-backend prover: the paper's pushbutton induction tactic
/// (verify/prover.h) and a property-directed-reachability engine
/// (verify/pdr.h) both take the same frozen behavioral abstraction and
/// produce certificates validated by the same independent checker.
///
/// Portfolio mode races both engines per property. The verdict is still a
/// deterministic, byte-identical function of (program, property, options)
/// — the ROADMAP design decision every cache, parity test, and the daemon
/// lean on — because selection follows a canonical *priority* rule rather
/// than wall-clock order:
///
///   1. if induction returns a sound verdict (Proved), it is served;
///   2. otherwise, if PDR returns a sound verdict (Proved or a concretely
///      confirmed Refuted), it is served;
///   3. otherwise induction's Unknown is served (its failing obligation is
///      the more actionable diagnostic).
///
/// Racing only changes *when* the answer arrives: induction finishing
/// with a proof cancels the still-running PDR attempt (its result could
/// not have been selected); PDR finishing first never cancels induction
/// (its result is only consulted after induction's is known). Engine
/// choice joins the proof-cache options fingerprint, so entries produced
/// by different engines never shadow each other.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_ENGINE_H
#define REFLEX_VERIFY_ENGINE_H

#include <optional>
#include <string>

namespace reflex {

/// Which proof engine(s) a verification run uses for trace properties.
/// Non-interference properties always take the §5.2 NI prover regardless
/// of the selection (neither backend replaces it).
enum class EngineKind : uint8_t {
  /// The paper's induction over BehAbs with guard->history invariant
  /// synthesis (verify/prover.h). The default.
  Induction,
  /// Property-directed reachability over the same abstraction
  /// (verify/pdr.h).
  Pdr,
  /// Race both; first sound verdict in canonical priority order wins.
  Portfolio,
};

/// "induction", "pdr", "portfolio".
const char *engineKindName(EngineKind K);

/// Inverse of engineKindName; nullopt for anything else. The empty string
/// parses as Induction (wire formats omit the default).
std::optional<EngineKind> parseEngineKind(const std::string &Name);

/// The string PropertyResult::ServedBy records for a verdict produced by
/// \p K as a single engine (portfolio itself never serves a verdict; one
/// of its two member engines does).
const char *servingEngineName(EngineKind K);

} // namespace reflex

#endif // REFLEX_VERIFY_ENGINE_H
