//===- verify/checker.h - Independent certificate checking ------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-validation of proof certificates, standing in for Coq's kernel
/// re-checking the tactic-produced proof term. The checker re-runs the
/// (deterministic) proof derivation with a *fresh* solver instance — every
/// entailment and satisfiability query is recomputed from scratch, with an
/// empty memo table — and then requires the re-derived certificate to be
/// structurally identical to the stored one (same cases, same
/// justifications, same invariants). The prover's search-order heuristics
/// and caches are thereby outside the trusted base; what remains trusted
/// is the shared semantics core: symbolic execution, pattern matching, and
/// the entailment engine (documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_CHECKER_H
#define REFLEX_VERIFY_CHECKER_H

#include "verify/ni.h"
#include "verify/prover.h"

namespace reflex {

struct CheckOutcome {
  bool Ok = false;
  std::string Why;
  /// The re-derivation's validated solver log (Certificate::SolverLog):
  /// every Unsat reason trail replayed by the independent validator, then
  /// rendered. Valid when Ok; callers copy it into the certificate they
  /// export so audit JSON is identical whether a verdict is served cold
  /// or re-admitted from the proof cache.
  std::vector<std::string> SolverLog;
};

/// Re-validates \p Cert for property \p Prop of \p P (abstracted by
/// \p Abs). \p Opts must match the options the certificate was produced
/// with (they change the certificate's shape, e.g. syntactic-skip steps).
CheckOutcome checkCertificate(TermContext &Ctx, const Program &P,
                              const BehAbs &Abs, const Property &Prop,
                              const Certificate &Cert,
                              const ProverOptions &Opts);

/// Outcome of re-validating a *serialized* certificate (a cached one: the
/// originating session is gone, so only its canonical rendering survives).
struct RecheckOutcome {
  bool Ok = false;
  std::string Why;
  /// The freshly re-derived certificate (valid when the re-derivation
  /// proved the property, whether or not it matched the cached form). Its
  /// terms live in the TermContext passed to checkCanonicalCertificate.
  Certificate Rederived;
  bool RederivedProved = false;
};

/// The persistent proof cache's trust anchor: re-derives the proof of
/// \p Prop from scratch (fresh solver, fresh invariant cache — exactly
/// like checkCertificate) and accepts iff the re-derivation's canonical
/// serialization equals \p Canonical (Certificate::canonical). Because
/// structural certificate equality coincides with canonical-form equality,
/// this is checkCertificate lifted to certificates that crossed a process
/// boundary; a corrupt or tampered cache entry fails the comparison and
/// the caller must fall back to full re-verification.
RecheckOutcome checkCanonicalCertificate(TermContext &Ctx, const Program &P,
                                         const BehAbs &Abs,
                                         const Property &Prop,
                                         const std::string &Canonical,
                                         const ProverOptions &Opts);

} // namespace reflex

#endif // REFLEX_VERIFY_CHECKER_H
