//===- verify/checker.h - Independent certificate checking ------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-validation of proof certificates, standing in for Coq's kernel
/// re-checking the tactic-produced proof term. The checker re-runs the
/// (deterministic) proof derivation with a *fresh* solver instance — every
/// entailment and satisfiability query is recomputed from scratch, with an
/// empty memo table — and then requires the re-derived certificate to be
/// structurally identical to the stored one (same cases, same
/// justifications, same invariants). The prover's search-order heuristics
/// and caches are thereby outside the trusted base; what remains trusted
/// is the shared semantics core: symbolic execution, pattern matching, and
/// the entailment engine (documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_VERIFY_CHECKER_H
#define REFLEX_VERIFY_CHECKER_H

#include "verify/ni.h"
#include "verify/prover.h"

namespace reflex {

struct CheckOutcome {
  bool Ok = false;
  std::string Why;
};

/// Re-validates \p Cert for property \p Prop of \p P (abstracted by
/// \p Abs). \p Opts must match the options the certificate was produced
/// with (they change the certificate's shape, e.g. syntactic-skip steps).
CheckOutcome checkCertificate(TermContext &Ctx, const Program &P,
                              const BehAbs &Abs, const Property &Prop,
                              const Certificate &Cert,
                              const ProverOptions &Opts);

} // namespace reflex

#endif // REFLEX_VERIFY_CHECKER_H
