//===- prop/check.cc - Concrete-trace property semantics --------*- C++ -*-===//

#include "prop/check.h"

#include <sstream>

namespace reflex {

namespace {

/// Matches \p A against \p Pat under a *fixed* binding: variables bound in
/// \p B must agree; variables not bound in \p B may bind freely (this only
/// happens for obligation-side variables absent from the trigger, which the
/// validator rejects, so in validated programs the binding is total).
bool matchUnder(const Action &A, const ActionPattern &Pat, const Trace &Tr,
                const Binding &B) {
  Binding Tmp = B;
  return matchAction(A, Pat, Tr, Tmp);
}

} // namespace

std::optional<Violation> checkTraceProperty(const Trace &Tr,
                                            const TraceProperty &P) {
  const ActionPattern &Trigger = P.trigger();
  const ActionPattern &Obligation = P.obligation();
  const auto &Actions = Tr.Actions;

  for (size_t I = 0; I < Actions.size(); ++I) {
    Binding B;
    if (!matchAction(Actions[I], Trigger, Tr, B))
      continue;

    // The trigger matched at index I under binding B; discharge the
    // obligation per the §4.1 definition of each primitive.
    bool Ok = false;
    std::ostringstream Why;
    switch (P.Op) {
    case TraceOp::ImmBefore:
      // Every B-action is immediately preceded by an A-action.
      Ok = I > 0 && matchUnder(Actions[I - 1], Obligation, Tr, B);
      Why << "no immediately-preceding action matching " << Obligation.str();
      break;
    case TraceOp::ImmAfter:
      // Every A-action is immediately followed by a B-action.
      Ok = I + 1 < Actions.size() &&
           matchUnder(Actions[I + 1], Obligation, Tr, B);
      Why << "no immediately-following action matching " << Obligation.str();
      break;
    case TraceOp::Enables: {
      // Every B-action is preceded, somewhere, by an A-action.
      for (size_t J = 0; J < I && !Ok; ++J)
        Ok = matchUnder(Actions[J], Obligation, Tr, B);
      Why << "no earlier action matching " << Obligation.str();
      break;
    }
    case TraceOp::Ensures: {
      // Every A-action is followed, somewhere, by a B-action.
      for (size_t J = I + 1; J < Actions.size() && !Ok; ++J)
        Ok = matchUnder(Actions[J], Obligation, Tr, B);
      Why << "no later action matching " << Obligation.str();
      break;
    }
    case TraceOp::Disables: {
      // No B-action is preceded by an A-action.
      Ok = true;
      for (size_t J = 0; J < I && Ok; ++J) {
        if (matchUnder(Actions[J], Obligation, Tr, B)) {
          Ok = false;
          Why << "action " << J << " (" << Actions[J].str()
              << ") matches the disabling pattern " << Obligation.str();
        }
      }
      break;
    }
    }

    if (!Ok) {
      Violation V;
      V.TriggerIndex = I;
      std::ostringstream OS;
      OS << "trace property violated at action " << I << " ("
         << Actions[I].str() << "): " << Why.str();
      V.Explanation = OS.str();
      return V;
    }
  }
  return std::nullopt;
}

} // namespace reflex
