//===- prop/check.h - Concrete-trace property semantics ---------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reference semantics of trace properties on *concrete* traces,
/// transcribing the Coq definitions of §4.1 (with the trace order flipped:
/// our traces are chronological). This checker is the ground truth the
/// symbolic prover is tested against: every property the prover certifies
/// must hold, under this checker, on every trace the interpreter produces
/// (tests/refinement_test.cc), and the runtime monitor uses it to flag
/// violations during concrete execution.
///
/// Non-interference is a hyperproperty (it relates *pairs* of executions)
/// and has no single-trace semantics; it is handled only by the symbolic
/// prover (verify/ni.h) via the paper's Theorem 1 sufficient conditions.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_PROP_CHECK_H
#define REFLEX_PROP_CHECK_H

#include "prop/property.h"
#include "trace/action.h"

#include <optional>
#include <string>

namespace reflex {

/// A concrete counterexample to a trace property.
struct Violation {
  /// Index (into Trace::Actions) of the trigger action that has no valid
  /// justification.
  size_t TriggerIndex = 0;
  /// Human-readable explanation.
  std::string Explanation;
};

/// Checks \p P on the complete trace \p Tr. Returns std::nullopt when the
/// property holds, or the first violation otherwise.
std::optional<Violation> checkTraceProperty(const Trace &Tr,
                                            const TraceProperty &P);

} // namespace reflex

#endif // REFLEX_PROP_CHECK_H
