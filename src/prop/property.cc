//===- prop/property.cc - The Reflex property language ----------*- C++ -*-===//

#include "prop/property.h"

#include <sstream>

namespace reflex {

const char *traceOpName(TraceOp Op) {
  switch (Op) {
  case TraceOp::ImmBefore:
    return "ImmBefore";
  case TraceOp::ImmAfter:
    return "ImmAfter";
  case TraceOp::Enables:
    return "Enables";
  case TraceOp::Ensures:
    return "Ensures";
  case TraceOp::Disables:
    return "Disables";
  }
  return "?";
}

std::string TraceProperty::str() const {
  std::ostringstream OS;
  if (!Vars.empty()) {
    OS << "forall ";
    for (size_t I = 0; I < Vars.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Vars[I];
    }
    OS << ". ";
  }
  OS << "[" << A.str() << "] " << traceOpName(Op) << " [" << B.str() << "]";
  return OS.str();
}

std::string NIProperty::str() const {
  std::ostringstream OS;
  if (Param)
    OS << "forall " << *Param << ". ";
  OS << "noninterference { high components: ";
  for (size_t I = 0; I < HighComps.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << HighComps[I].str();
  }
  OS << "; high vars: ";
  for (size_t I = 0; I < HighVars.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << HighVars[I];
  }
  OS << "; }";
  return OS.str();
}

std::string Property::str() const {
  std::ostringstream OS;
  OS << Name << ": ";
  if (isTrace())
    OS << traceProp().str();
  else
    OS << niProp().str();
  return OS.str();
}

} // namespace reflex
