//===- prop/property.h - The Reflex property language -----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Reflex property language (paper §4). Properties come in two
/// flavors:
///
///  * Trace properties, built from the five primitive trace patterns —
///    ImmBefore, ImmAfter, Enables, Ensures, Disables — each parameterized
///    by two action patterns and a list of universally quantified
///    variables.
///
///  * Non-interference properties (§4.2), specified by a labeling of
///    components (as configuration-constrained component patterns, possibly
///    parameterized: "for all domains d, components with domain d are
///    high") plus a labeling of state variables (the θv of §5.2, which the
///    paper requires from the user to make the proof search tractable).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_PROP_PROPERTY_H
#define REFLEX_PROP_PROPERTY_H

#include "support/source_loc.h"
#include "trace/pattern.h"

#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace reflex {

/// The five primitive trace patterns of §4.1.
enum class TraceOp : uint8_t {
  /// ImmBefore A B: every action matching B is *immediately* preceded by
  /// an action matching A.
  ImmBefore,
  /// ImmAfter A B: every action matching A is *immediately* followed by an
  /// action matching B.
  ImmAfter,
  /// Enables A B: every action matching B is preceded (somewhere earlier in
  /// the trace) by an action matching A.
  Enables,
  /// Ensures A B: every action matching A is followed (somewhere later in
  /// the trace) by an action matching B.
  Ensures,
  /// Disables A B: no action matching B is preceded by an action
  /// matching A.
  Disables,
};

const char *traceOpName(TraceOp Op);

/// A trace property: `forall Vars. [A] Op [B]`. All variables are
/// universally quantified at the outermost level (paper §2). The validator
/// enforces the *trigger-variable discipline*: every variable must occur in
/// the trigger pattern (see triggerIsB()), which makes universally
/// quantified checking decidable.
struct TraceProperty {
  std::vector<std::string> Vars;
  TraceOp Op = TraceOp::Enables;
  ActionPattern A;
  ActionPattern B;

  /// The trigger of a trace property is the pattern whose occurrences
  /// generate proof obligations: B for ImmBefore/Enables/Disables ("each
  /// action matching B requires ..."), A for ImmAfter/Ensures.
  bool triggerIsB() const {
    return Op == TraceOp::ImmBefore || Op == TraceOp::Enables ||
           Op == TraceOp::Disables;
  }
  const ActionPattern &trigger() const { return triggerIsB() ? B : A; }
  const ActionPattern &obligation() const { return triggerIsB() ? A : B; }

  std::string str() const;
};

/// A non-interference property: a partitioning of components into high and
/// low (paper Definition 1/2). Components matching any pattern in
/// HighComps are high; all others are low. The optional Param is a
/// universally quantified variable usable inside the patterns ("for all
/// domains d"). HighVars is the θv variable labeling of §5.2.
struct NIProperty {
  std::optional<std::string> Param;
  std::vector<CompPattern> HighComps;
  std::vector<std::string> HighVars;

  std::string str() const;
};

/// A named property, either flavor.
struct Property {
  std::string Name;
  SourceLoc Loc;
  std::variant<TraceProperty, NIProperty> Body;

  bool isTrace() const { return std::holds_alternative<TraceProperty>(Body); }
  const TraceProperty &traceProp() const {
    return std::get<TraceProperty>(Body);
  }
  const NIProperty &niProp() const { return std::get<NIProperty>(Body); }

  std::string str() const;
};

} // namespace reflex

#endif // REFLEX_PROP_PROPERTY_H
