//===- support/deadline.h - Cooperative budgets -----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation and resource budgets for the prover, in the
/// style of a SAT solver's terminate()/limit machinery: a Deadline is a
/// token installed for one verification attempt that the hot loops
/// (solver queries, prover path enumeration, symbolic execution) poll via
/// expired(). Three limits compose:
///
///  * a wall-clock deadline (setWallMillis),
///  * a step budget counting polls — dominated by solver queries, the
///    prover's unit of work (setStepBudget),
///  * an external cancel flag shared across threads (setCancelFlag).
///
/// Polling is cheap by design: every poll increments a counter and
/// compares it against the step budget; the clock and the atomic cancel
/// flag are only consulted every PollStride polls (and on the first), so
/// an unlimited Deadline costs an increment and two predictable branches
/// per solver query. Once expired, the outcome latches — outcome() and
/// describe() report *why* deterministically.
///
/// Soundness under expiry: an expired Solver answers Maybe ("could not
/// refute"), so entailment fails and the prover can only produce a
/// failure, never a false Proved. See docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_DEADLINE_H
#define REFLEX_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

namespace reflex {

/// Why a Deadline expired (Ok: it has not).
enum class BudgetOutcome : uint8_t { Ok, Timeout, ResourceExhausted, Aborted };

const char *budgetOutcomeName(BudgetOutcome O);

/// A thread-safe cancellation latch. The canceller (another thread, a
/// signal handler via a pre-registered flag) calls cancel(); every
/// Deadline sharing the flag observes it at its next stride poll.
class CancelFlag {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// One verification attempt's budget token. Not thread-safe itself (one
/// prover thread polls it); cross-thread cancellation goes through the
/// shared CancelFlag.
class Deadline {
public:
  Deadline() = default;

  /// Arms a wall-clock limit of \p Ms milliseconds from now (0 = none).
  void setWallMillis(uint64_t Ms) {
    WallMillis = Ms;
    if (Ms)
      WallEnd = Clock::now() + std::chrono::milliseconds(Ms);
  }

  /// Arms a step budget: expired() returns true from the (Steps+1)-th
  /// poll on (0 = none).
  void setStepBudget(uint64_t Steps) { StepBudget = Steps; }

  void setCancelFlag(std::shared_ptr<const CancelFlag> F) {
    Cancel = std::move(F);
  }

  /// Any limit armed? An inactive Deadline never expires.
  bool active() const { return WallMillis || StepBudget || Cancel != nullptr; }

  /// One unit of work. Returns true once the budget is exhausted; the
  /// verdict latches (steps stop counting, the reason is frozen).
  bool expired() {
    if (Out != BudgetOutcome::Ok)
      return true;
    ++Steps;
    if (StepBudget && Steps > StepBudget) {
      Out = BudgetOutcome::ResourceExhausted;
      return true;
    }
    if (Steps == 1 || Steps % PollStride == 0) {
      if (Cancel && Cancel->cancelled()) {
        Out = BudgetOutcome::Aborted;
        return true;
      }
      if (WallMillis && Clock::now() >= WallEnd) {
        Out = BudgetOutcome::Timeout;
        return true;
      }
    }
    return false;
  }

  /// The latched verdict, without consuming a step.
  bool expiredNow() const { return Out != BudgetOutcome::Ok; }
  BudgetOutcome outcome() const { return Out; }
  uint64_t steps() const { return Steps; }

  /// Deterministic human-readable expiry reason (empty while Ok). Does
  /// not mention elapsed time or step counts at detection — only the
  /// configured limits — so reports compare equal across worker counts.
  std::string describe() const;

private:
  using Clock = std::chrono::steady_clock;
  /// Clock/cancel-flag poll stride. 64 solver queries take well under a
  /// millisecond, so wall-clock detection latency stays negligible.
  static constexpr uint64_t PollStride = 64;

  uint64_t WallMillis = 0;
  Clock::time_point WallEnd{};
  uint64_t StepBudget = 0;
  uint64_t Steps = 0;
  std::shared_ptr<const CancelFlag> Cancel;
  BudgetOutcome Out = BudgetOutcome::Ok;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_DEADLINE_H
