//===- support/rng.h - Deterministic PRNG -----------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) for the fuzzing scheduler
/// and the property-based refinement tests. Deterministic seeding makes
/// every test failure replayable.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_RNG_H
#define REFLEX_SUPPORT_RNG_H

#include <cstdint>

namespace reflex {

/// SplitMix64 generator. Not cryptographic; used for scheduling decisions
/// and workload generation only.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Bernoulli with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_RNG_H
