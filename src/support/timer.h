//===- support/timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A wall-clock stopwatch for the verification benches (Figure 6 reports
/// per-property verification time).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_TIMER_H
#define REFLEX_SUPPORT_TIMER_H

#include <chrono>

namespace reflex {

/// Starts on construction; elapsed*() reads without stopping.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double elapsedMillis() const { return elapsedSeconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_TIMER_H
