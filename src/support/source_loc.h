//===- support/source_loc.h - Source locations for diagnostics -*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 1-based (line, column) source location used by the lexer, parser, and
/// semantic validator when reporting diagnostics against Reflex source.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_SOURCE_LOC_H
#define REFLEX_SUPPORT_SOURCE_LOC_H

#include <cstdint>
#include <string>

namespace reflex {

/// A position in a Reflex source buffer. Line and column are 1-based; the
/// default-constructed location (0, 0) means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &Other) const = default;

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace reflex

#endif // REFLEX_SUPPORT_SOURCE_LOC_H
