//===- support/faultinject.cc - Deterministic fault injection ---*- C++ -*-===//

#include "support/faultinject.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define REFLEX_HAVE_FSYNC 1
#endif

namespace reflex {

const char *faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::None:
    return "None";
  case FaultKind::Fail:
    return "Fail";
  case FaultKind::Truncate:
    return "Truncate";
  case FaultKind::BitFlip:
    return "BitFlip";
  case FaultKind::Delay:
    return "Delay";
  }
  return "?";
}

uint64_t FaultPlan::mix(std::string_view Site, std::string_view Key) const {
  // FNV-1a over seed || site || NUL || key, then a SplitMix64-style
  // finalizer. Pure in its inputs: no call-order or thread dependence.
  uint64_t H = 1469598103934665603ULL;
  auto Feed = [&H](const void *Data, size_t N) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < N; ++I) {
      H ^= P[I];
      H *= 1099511628211ULL;
    }
  };
  Feed(&Seed, sizeof(Seed));
  Feed(Site.data(), Site.size());
  unsigned char Zero = 0;
  Feed(&Zero, 1);
  Feed(Key.data(), Key.size());
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ULL;
  H = (H ^ (H >> 27)) * 0x94D049BB133111EBULL;
  return H ^ (H >> 31);
}

FaultKind FaultPlan::decide(std::string_view Site, std::string_view Key) const {
  for (const FaultRule &R : Rules)
    if (R.Site == Site &&
        (R.KeyPart.empty() || Key.find(R.KeyPart) != std::string_view::npos))
      return R.Kind;
  if (!Permille)
    return FaultKind::None;
  uint64_t H = mix(Site, Key);
  if (H % 1000 >= Permille)
    return FaultKind::None;
  switch ((H / 1000) % 3) {
  case 0:
    return FaultKind::Fail;
  case 1:
    return FaultKind::Truncate;
  default:
    return FaultKind::BitFlip;
  }
}

uint64_t FaultPlan::arg(std::string_view Site, std::string_view Key,
                        uint64_t Bound) const {
  // A second, independent draw: re-mix with a salt so arg() does not
  // correlate with decide().
  uint64_t H = mix(Site, Key) ^ 0xA5A5A5A55A5A5A5AULL;
  H = (H ^ (H >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return H % Bound;
}

namespace {

/// Applies a payload fault in place. Truncation keeps at least one byte
/// short of the original (and at most half), so a parser always sees a
/// damaged document; bit flips pick a deterministic offset.
void corrupt(std::string &Bytes, FaultKind K, const FaultPlan &Plan,
             std::string_view Site, std::string_view Key) {
  if (Bytes.empty())
    return;
  if (K == FaultKind::Truncate) {
    Bytes.resize(Plan.arg(Site, Key, (Bytes.size() + 1) / 2));
  } else if (K == FaultKind::BitFlip) {
    uint64_t Bit = Plan.arg(Site, Key, Bytes.size() * 8);
    Bytes[Bit / 8] = static_cast<char>(Bytes[Bit / 8] ^ (1u << (Bit % 8)));
  }
}

} // namespace

Result<std::string> FaultyIO::readFile(const std::string &Path,
                                       std::string_view Key) const {
  FaultKind K = Plan ? Plan->decide("cache.read", Key) : FaultKind::None;
  if (K == FaultKind::Fail)
    return Error("injected read failure: " + Path);
  std::ifstream In(Path, std::ios::binary);
  if (!In.is_open())
    return Error("no such entry: " + Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  if (In.bad())
    return Error("read error: " + Path);
  std::string Bytes = SS.str();
  if (Plan && K != FaultKind::None)
    corrupt(Bytes, K, *Plan, "cache.read", Key);
  return Bytes;
}

Result<void> FaultyIO::writeFile(const std::string &Path,
                                 std::string_view Bytes,
                                 std::string_view Key) const {
  FaultKind K = Plan ? Plan->decide("cache.write", Key) : FaultKind::None;
  if (K == FaultKind::Fail)
    return Error("injected write failure: " + Path);
  std::string Payload(Bytes);
  if (Plan && K != FaultKind::None)
    corrupt(Payload, K, *Plan, "cache.write", Key);
#ifdef REFLEX_HAVE_FSYNC
  // POSIX path: write through a file descriptor so the bytes can be
  // fsynced before the caller renames the file into place — without the
  // fsync, a crash after the rename can publish an empty or torn entry.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return Error("cannot open for writing: " + Path);
  size_t Off = 0;
  while (Off < Payload.size()) {
    ssize_t N = ::write(Fd, Payload.data() + Off, Payload.size() - Off);
    if (N < 0) {
      ::close(Fd);
      return Error("write error: " + Path);
    }
    Off += static_cast<size_t>(N);
  }
  if (::fsync(Fd) != 0) {
    ::close(Fd);
    return Error("fsync error: " + Path);
  }
  if (::close(Fd) != 0)
    return Error("close error: " + Path);
#else
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out.is_open())
    return Error("cannot open for writing: " + Path);
  Out.write(Payload.data(), static_cast<std::streamsize>(Payload.size()));
  Out.flush();
  if (!Out.good())
    return Error("write error: " + Path);
#endif
  return {};
}

Result<void> FaultyIO::renameFile(const std::string &From,
                                  const std::string &To,
                                  std::string_view Key) const {
  FaultKind K = Plan ? Plan->decide("cache.rename", Key) : FaultKind::None;
  if (K == FaultKind::Fail)
    return Error("injected rename failure: " + To);
  if (std::rename(From.c_str(), To.c_str()) != 0)
    return Error("rename failed: " + From + " -> " + To);
  return {};
}

} // namespace reflex
