//===- support/diagnostics.h - Diagnostic engine ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine in the style of compiler frontends: the lexer,
/// parser, and validator report errors/warnings/notes here with source
/// locations; callers render them against the original source buffer.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_DIAGNOSTICS_H
#define REFLEX_SUPPORT_DIAGNOSTICS_H

#include "support/source_loc.h"

#include <string>
#include <string_view>
#include <vector>

namespace reflex {

/// Severity of a diagnostic.
enum class DiagSeverity { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics during parsing and validation.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }
  void clear();

  /// Renders all diagnostics, one per line, as
  /// "<name>:<line>:<col>: <severity>: <message>". If \p Source is
  /// non-empty, the offending source line and a caret are appended.
  std::string render(std::string_view BufferName,
                     std::string_view Source = {}) const;

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_DIAGNOSTICS_H
