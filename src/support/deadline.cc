//===- support/deadline.cc - Cooperative budgets ----------------*- C++ -*-===//

#include "support/deadline.h"

namespace reflex {

const char *budgetOutcomeName(BudgetOutcome O) {
  switch (O) {
  case BudgetOutcome::Ok:
    return "Ok";
  case BudgetOutcome::Timeout:
    return "Timeout";
  case BudgetOutcome::ResourceExhausted:
    return "ResourceExhausted";
  case BudgetOutcome::Aborted:
    return "Aborted";
  }
  return "?";
}

std::string Deadline::describe() const {
  switch (Out) {
  case BudgetOutcome::Ok:
    return "";
  case BudgetOutcome::Timeout:
    return "wall-clock deadline of " + std::to_string(WallMillis) +
           " ms exceeded";
  case BudgetOutcome::ResourceExhausted:
    return "step budget of " + std::to_string(StepBudget) + " exhausted";
  case BudgetOutcome::Aborted:
    return "cancelled by caller";
  }
  return "";
}

} // namespace reflex
