//===- support/socket.cc - Unix-domain socket helpers -----------*- C++ -*-===//

#include "support/socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace reflex {

namespace {

Result<int> makeSocket() {
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0)
    return Error(std::string("socket: ") + std::strerror(errno));
  return FD;
}

Result<sockaddr_un> addrFor(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return Error("socket path '" + Path + "' is empty or longer than " +
                 std::to_string(sizeof(Addr.sun_path) - 1) + " bytes");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Addr;
}

} // namespace

Result<UnixSocket> UnixSocket::connectTo(const std::string &Path) {
  Result<sockaddr_un> Addr = addrFor(Path);
  if (!Addr.ok())
    return Error(Addr.error());
  Result<int> FD = makeSocket();
  if (!FD.ok())
    return Error(FD.error());
  if (::connect(*FD, reinterpret_cast<const sockaddr *>(&*Addr),
                sizeof(*Addr)) != 0) {
    int E = errno;
    ::close(*FD);
    return Error("cannot connect to '" + Path + "': " + std::strerror(E));
  }
  return UnixSocket(*FD);
}

void UnixSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
  Buf.clear();
}

Result<void> UnixSocket::sendAll(std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(FD, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error(std::string("send: ") + std::strerror(errno));
    }
    Off += size_t(N);
  }
  return {};
}

Result<bool> UnixSocket::readLine(std::string &Out, size_t MaxBytes) {
  Out.clear();
  for (;;) {
    // Serve from the read-ahead first: recv may have spilled past the
    // previous frame's newline (pipelined requests).
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Out.append(Buf, 0, NL);
      Buf.erase(0, NL + 1);
      if (Out.size() > MaxBytes)
        return Error("frame too large (" + std::to_string(Out.size()) +
                     " bytes, limit " + std::to_string(MaxBytes) + ")");
      return true;
    }
    Out += Buf;
    Buf.clear();
    if (Out.size() > MaxBytes)
      return Error("frame too large (over " + std::to_string(MaxBytes) +
                   " bytes)");
    char Chunk[4096];
    ssize_t N = ::recv(FD, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error(std::string("recv: ") + std::strerror(errno));
    }
    if (N == 0) {
      if (Out.empty())
        return false; // clean EOF between frames
      return Error("truncated frame: peer closed mid-line after " +
                   std::to_string(Out.size()) + " bytes");
    }
    Buf.append(Chunk, size_t(N));
  }
}

bool UnixSocket::peerClosed() const {
  if (FD < 0)
    return true;
  char C;
  ssize_t N = ::recv(FD, &C, 1, MSG_PEEK | MSG_DONTWAIT);
  if (N == 0)
    return true; // orderly shutdown from the peer
  if (N < 0)
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  return false; // pipelined bytes waiting: very much alive
}

Result<UnixListener> UnixListener::bindAt(const std::string &Path) {
  Result<sockaddr_un> Addr = addrFor(Path);
  if (!Addr.ok())
    return Error(Addr.error());
  Result<int> FD = makeSocket();
  if (!FD.ok())
    return Error(FD.error());
  // A stale socket file (crashed daemon) would make bind fail forever;
  // a *live* daemon still fails below because two binds cannot coexist
  // only if the old file is gone — so this follows the common unlink-
  // then-bind convention for daemon sockets.
  ::unlink(Path.c_str());
  if (::bind(*FD, reinterpret_cast<const sockaddr *>(&*Addr),
             sizeof(*Addr)) != 0) {
    int E = errno;
    ::close(*FD);
    return Error("cannot bind '" + Path + "': " + std::strerror(E));
  }
  if (::listen(*FD, 16) != 0) {
    int E = errno;
    ::close(*FD);
    ::unlink(Path.c_str());
    return Error("cannot listen on '" + Path + "': " + std::strerror(E));
  }
  UnixListener L;
  L.FD = *FD;
  L.SockPath = Path;
  return L;
}

Result<UnixSocket> UnixListener::accept() {
  for (;;) {
    int CFD = ::accept(FD, nullptr, nullptr);
    if (CFD >= 0)
      return UnixSocket(CFD);
    if (errno == EINTR)
      continue;
    return Error(std::string("accept: ") + std::strerror(errno));
  }
}

void UnixListener::interrupt() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (FD >= 0)
    ::shutdown(FD, SHUT_RDWR);
}

void UnixListener::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (FD >= 0) {
      ::shutdown(FD, SHUT_RDWR);
      ::close(FD);
      FD = -1;
    }
  }
  if (!SockPath.empty()) {
    ::unlink(SockPath.c_str());
    SockPath.clear();
  }
}

} // namespace reflex
