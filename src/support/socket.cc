//===- support/socket.cc - Unix-domain socket helpers -----------*- C++ -*-===//

#include "support/socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

// Linux suppresses SIGPIPE per send; BSD/macOS per socket. Cover both so
// a daemon writing to a vanished client always gets EPIPE, never a kill.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace reflex {

namespace {

void suppressSigpipe(int FD) {
#ifdef SO_NOSIGPIPE
  int One = 1;
  (void)::setsockopt(FD, SOL_SOCKET, SO_NOSIGPIPE, &One, sizeof(One));
#else
  (void)FD;
#endif
}

Result<int> makeSocket() {
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0)
    return Error(std::string("socket: ") + std::strerror(errno));
  suppressSigpipe(FD);
  return FD;
}

Result<sockaddr_un> addrFor(const std::string &Path) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return Error("socket path '" + Path + "' is empty or longer than " +
                 std::to_string(sizeof(Addr.sun_path) - 1) + " bytes");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Addr;
}

/// poll() for \p Events, retrying EINTR. \p TimeoutMs of 0 means wait
/// forever. Returns +1 ready, 0 timed out, -1 error (errno set).
int pollFor(int FD, short Events, uint64_t TimeoutMs) {
  pollfd P{};
  P.fd = FD;
  P.events = Events;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs == 0 ? -1 : int(TimeoutMs));
    if (N >= 0)
      return N > 0 ? 1 : 0;
    if (errno != EINTR)
      return -1;
  }
}

} // namespace

Result<UnixSocket> UnixSocket::connectTo(const std::string &Path) {
  Result<sockaddr_un> Addr = addrFor(Path);
  if (!Addr.ok())
    return Error(Addr.error());
  Result<int> FD = makeSocket();
  if (!FD.ok())
    return Error(FD.error());
  if (::connect(*FD, reinterpret_cast<const sockaddr *>(&*Addr),
                sizeof(*Addr)) != 0) {
    // EINTR mid-connect: the connection proceeds asynchronously; the
    // POSIX-blessed completion is to wait for writability and read the
    // final status from SO_ERROR (re-calling connect would race it).
    if (errno == EINTR && pollFor(*FD, POLLOUT, 0) > 0) {
      int Err = 0;
      socklen_t Len = sizeof(Err);
      if (::getsockopt(*FD, SOL_SOCKET, SO_ERROR, &Err, &Len) == 0 &&
          Err == 0)
        return UnixSocket(*FD);
      errno = Err ? Err : ECONNREFUSED;
    }
    int E = errno;
    ::close(*FD);
    return Error("cannot connect to '" + Path + "': " + std::strerror(E));
  }
  return UnixSocket(*FD);
}

void UnixSocket::close() {
  if (FD >= 0) {
    ::close(FD);
    FD = -1;
  }
  Buf.clear();
}

FaultKind UnixSocket::nextFault(const char *Site, uint64_t Op,
                                uint64_t *ChunkCap) {
  if (!Faults)
    return FaultKind::None;
  std::string Key = FaultTag + "#" + std::to_string(Op);
  FaultKind K = Faults->decide(Site, Key);
  switch (K) {
  case FaultKind::None:
    break;
  case FaultKind::Delay:
    // A slow peer: a small, seeded pause. Decisions (and the length) are
    // pure in (seed, site, key), so interleavings cannot change them.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + Faults->arg(Site, Key, 10)));
    K = FaultKind::None;
    break;
  case FaultKind::Truncate:
    // A short read/write: force the transfer through 1-8-byte chunks so
    // the retry loop must reassemble the stream without corruption.
    if (ChunkCap)
      *ChunkCap = 1 + Faults->arg(Site, Key, 8);
    K = FaultKind::None;
    break;
  case FaultKind::Fail:
  case FaultKind::BitFlip:
    // Sockets do not silently flip bits (the kernel does not corrupt);
    // both map to the connection dying under the caller.
    K = FaultKind::Fail;
    break;
  }
  return K;
}

Result<void> UnixSocket::sendAll(std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    uint64_t ChunkCap = UINT64_MAX;
    if (nextFault("sock.write", WriteOps++, &ChunkCap) == FaultKind::Fail)
      return Error("send: injected connection reset");
    if (TimeoutMs) {
      // Progress bound: a peer that drains nothing for a full window is
      // stalled (slow-loris reading side); a slowly-draining peer that
      // accepts at least a byte per window keeps going.
      int Ready = pollFor(FD, POLLOUT, TimeoutMs);
      if (Ready < 0)
        return Error(std::string("poll: ") + std::strerror(errno));
      if (Ready == 0)
        return Error("send timeout: peer accepted no bytes for " +
                     std::to_string(TimeoutMs) + " ms");
    }
    size_t Want = Bytes.size() - Off;
    if (Want > ChunkCap)
      Want = size_t(ChunkCap);
    ssize_t N = ::send(FD, Bytes.data() + Off, Want, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error(std::string("send: ") + std::strerror(errno));
    }
    Off += size_t(N);
  }
  return {};
}

Result<bool> UnixSocket::readLine(std::string &Out, size_t MaxBytes) {
  Out.clear();
  using Clock = std::chrono::steady_clock;
  // The frame deadline arms at the first byte of a new frame (leftover
  // read-ahead counts): idle connections may wait forever, but a frame
  // that has *started* must finish within the window — a client
  // trickling one byte per interval hits this, not a hung thread.
  bool FrameStarted = !Buf.empty();
  Clock::time_point FrameDeadline =
      Clock::now() + std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    // Serve from the read-ahead first: recv may have spilled past the
    // previous frame's newline (pipelined requests).
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Out.append(Buf, 0, NL);
      Buf.erase(0, NL + 1);
      if (Out.size() > MaxBytes)
        return Error("frame too large (" + std::to_string(Out.size()) +
                     " bytes, limit " + std::to_string(MaxBytes) + ")");
      return true;
    }
    Out += Buf;
    Buf.clear();
    if (Out.size() > MaxBytes)
      return Error("frame too large (over " + std::to_string(MaxBytes) +
                   " bytes)");
    uint64_t ChunkCap = UINT64_MAX;
    if (nextFault("sock.read", ReadOps++, &ChunkCap) == FaultKind::Fail)
      return Error("recv: injected connection reset");
    if (TimeoutMs) {
      uint64_t Wait = 0; // 0 = forever (no frame in progress)
      if (FrameStarted || !Out.empty()) {
        auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
            FrameDeadline - Clock::now());
        if (Left.count() <= 0)
          return Error("read timeout: frame incomplete after " +
                       std::to_string(TimeoutMs) + " ms (" +
                       std::to_string(Out.size()) + " bytes so far)");
        Wait = uint64_t(Left.count());
      }
      int Ready = pollFor(FD, POLLIN, Wait);
      if (Ready < 0)
        return Error(std::string("poll: ") + std::strerror(errno));
      if (Ready == 0)
        return Error("read timeout: frame incomplete after " +
                     std::to_string(TimeoutMs) + " ms (" +
                     std::to_string(Out.size()) + " bytes so far)");
    }
    char Chunk[4096];
    size_t Want = sizeof(Chunk);
    if (Want > ChunkCap)
      Want = size_t(ChunkCap);
    ssize_t N = ::recv(FD, Chunk, Want, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Error(std::string("recv: ") + std::strerror(errno));
    }
    if (N == 0) {
      if (Out.empty())
        return false; // clean EOF between frames
      return Error("truncated frame: peer closed mid-line after " +
                   std::to_string(Out.size()) + " bytes");
    }
    if (!FrameStarted) {
      FrameStarted = true;
      FrameDeadline = Clock::now() + std::chrono::milliseconds(TimeoutMs);
    }
    Buf.append(Chunk, size_t(N));
  }
}

bool UnixSocket::peerClosed() const {
  if (FD < 0)
    return true;
  char C;
  ssize_t N = ::recv(FD, &C, 1, MSG_PEEK | MSG_DONTWAIT);
  if (N == 0)
    return true; // orderly shutdown from the peer
  if (N < 0)
    return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
  return false; // pipelined bytes waiting: very much alive
}

Result<UnixListener> UnixListener::bindAt(const std::string &Path) {
  Result<sockaddr_un> Addr = addrFor(Path);
  if (!Addr.ok())
    return Error(Addr.error());
  Result<int> FD = makeSocket();
  if (!FD.ok())
    return Error(FD.error());
  // A stale socket file (crashed daemon) would make bind fail forever;
  // a *live* daemon still fails below because two binds cannot coexist
  // only if the old file is gone — so this follows the common unlink-
  // then-bind convention for daemon sockets.
  ::unlink(Path.c_str());
  if (::bind(*FD, reinterpret_cast<const sockaddr *>(&*Addr),
             sizeof(*Addr)) != 0) {
    int E = errno;
    ::close(*FD);
    return Error("cannot bind '" + Path + "': " + std::strerror(E));
  }
  if (::listen(*FD, 16) != 0) {
    int E = errno;
    ::close(*FD);
    ::unlink(Path.c_str());
    return Error("cannot listen on '" + Path + "': " + std::strerror(E));
  }
  UnixListener L;
  L.FD = *FD;
  L.SockPath = Path;
  return L;
}

Result<UnixSocket> UnixListener::accept() {
  for (;;) {
    int CFD = ::accept(FD, nullptr, nullptr);
    if (CFD >= 0) {
      suppressSigpipe(CFD);
      return UnixSocket(CFD);
    }
    if (errno == EINTR)
      continue;
    return Error(std::string("accept: ") + std::strerror(errno));
  }
}

void UnixListener::interrupt() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (FD >= 0)
    ::shutdown(FD, SHUT_RDWR);
}

void UnixListener::close() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (FD >= 0) {
      ::shutdown(FD, SHUT_RDWR);
      ::close(FD);
      FD = -1;
    }
  }
  if (!SockPath.empty()) {
    ::unlink(SockPath.c_str());
    SockPath.clear();
  }
}

} // namespace reflex
