//===- support/faultinject.h - Deterministic fault injection ----*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded fault-injection harness for robustness testing. A FaultPlan
/// decides, for a named *site* ("cache.read", "cache.write",
/// "cache.rename", "worker", "budget", and the chaos harness's socket
/// sites "sock.read"/"sock.write") and a per-operation *key* (a cache
/// key, a "program/property#attempt" job tag, a "conn-tag#op" socket
/// operation), whether that operation should fail and how. Decisions are a pure function of
/// (seed, site, key) — independent of call order and thread
/// interleaving — which is what lets the robustness tests assert that a
/// faulted batch produces identical verdicts at --jobs 1 and --jobs 4.
///
/// Two modes compose:
///  * explicit rules (addRule): "every read of a key containing X is
///    truncated" — first matching rule wins; tests use these to stage
///    precise scenarios;
///  * a seeded probabilistic background (Permille faults per decision,
///    kind chosen by the same hash) for fuzzing.
///
/// FaultyIO is the file-IO shim the proof cache routes through: plain
/// read/write/rename when no plan is attached, injected errors,
/// truncations, and bit-flips when one is. writeFile also fsyncs before
/// returning, so a subsequent rename publishes durable bytes.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_FAULTINJECT_H
#define REFLEX_SUPPORT_FAULTINJECT_H

#include "support/result.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace reflex {

/// How an operation should misbehave.
enum class FaultKind : uint8_t {
  None,     ///< proceed normally
  Fail,     ///< the operation errors out
  Truncate, ///< IO only: drop the tail of the payload (torn write/read).
            ///< Socket sites ("sock.read"/"sock.write"): transfer in
            ///< 1-8-byte chunks (a short read/write the caller's retry
            ///< loop must absorb without corrupting the stream).
  BitFlip,  ///< IO only: flip one bit of the payload (silent corruption)
  Delay,    ///< socket sites: sleep a small deterministic interval before
            ///< proceeding (a slow peer / congested link)
};

const char *faultKindName(FaultKind K);

/// An explicit fault rule: applies at \p Site to every key containing
/// \p KeyPart (empty matches all keys).
struct FaultRule {
  std::string Site;
  std::string KeyPart;
  FaultKind Kind = FaultKind::Fail;
};

/// A deterministic plan of injected faults.
class FaultPlan {
public:
  /// An empty plan: no background faults; rules may still be added.
  FaultPlan() = default;

  /// A seeded probabilistic plan: each (site, key) decision faults with
  /// probability \p Permille / 1000.
  FaultPlan(uint64_t Seed, unsigned Permille)
      : Seed(Seed), Permille(Permille > 1000 ? 1000 : Permille) {}

  void addRule(FaultRule R) { Rules.push_back(std::move(R)); }

  /// The (pure) decision for one operation.
  FaultKind decide(std::string_view Site, std::string_view Key) const;

  /// A deterministic auxiliary draw in [0, Bound) for the same decision —
  /// truncation lengths and bit positions. \p Bound must be nonzero.
  uint64_t arg(std::string_view Site, std::string_view Key,
               uint64_t Bound) const;

private:
  uint64_t mix(std::string_view Site, std::string_view Key) const;

  uint64_t Seed = 0;
  unsigned Permille = 0;
  std::vector<FaultRule> Rules;
};

/// File IO routed through a fault plan. Stateless; a null plan means
/// plain IO. All methods are safe to call concurrently.
class FaultyIO {
public:
  explicit FaultyIO(const FaultPlan *Plan = nullptr) : Plan(Plan) {}

  /// Reads the whole file. A missing file is an error whose message
  /// contains "no such entry" (callers distinguish absence from damage).
  /// Site "cache.read": Fail errors, Truncate returns a prefix, BitFlip
  /// corrupts one bit of the returned bytes (the file itself is intact).
  Result<std::string> readFile(const std::string &Path,
                               std::string_view Key) const;

  /// Writes (creating/replacing) and fsyncs the file. Site "cache.write":
  /// Fail errors out, Truncate persists only a prefix (a torn write that
  /// "succeeded"), BitFlip persists one flipped bit.
  Result<void> writeFile(const std::string &Path, std::string_view Bytes,
                         std::string_view Key) const;

  /// Renames From over To (atomic within a filesystem). Site
  /// "cache.rename": Fail errors out.
  Result<void> renameFile(const std::string &From, const std::string &To,
                          std::string_view Key) const;

private:
  const FaultPlan *Plan;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_FAULTINJECT_H
