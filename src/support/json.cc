//===- support/json.cc - Streaming JSON writer ------------------*- C++ -*-===//

#include "support/json.h"

#include "support/strings.h"

#include <cstdio>

namespace reflex {

void JsonWriter::prepareValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Buffer += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  prepareValue();
  Buffer += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  NeedComma.pop_back();
  Buffer += '}';
}

void JsonWriter::beginArray() {
  prepareValue();
  Buffer += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  NeedComma.pop_back();
  Buffer += ']';
}

void JsonWriter::key(std::string_view K) {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Buffer += ',';
    NeedComma.back() = true;
  }
  Buffer += '"';
  Buffer += escapeString(K);
  Buffer += "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view V) {
  prepareValue();
  Buffer += '"';
  Buffer += escapeString(V);
  Buffer += '"';
}

void JsonWriter::value(int64_t V) {
  prepareValue();
  Buffer += std::to_string(V);
}

void JsonWriter::value(double V) {
  prepareValue();
  char Tmp[64];
  std::snprintf(Tmp, sizeof(Tmp), "%.6g", V);
  Buffer += Tmp;
}

void JsonWriter::value(bool V) {
  prepareValue();
  Buffer += V ? "true" : "false";
}

void JsonWriter::nullValue() {
  prepareValue();
  Buffer += "null";
}

} // namespace reflex
