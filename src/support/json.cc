//===- support/json.cc - Streaming JSON writer ------------------*- C++ -*-===//

#include "support/json.h"

#include "support/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace reflex {

void JsonWriter::prepareValue() {
  if (PendingKey) {
    PendingKey = false;
    return;
  }
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Buffer += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::beginObject() {
  prepareValue();
  Buffer += '{';
  NeedComma.push_back(false);
}

void JsonWriter::endObject() {
  NeedComma.pop_back();
  Buffer += '}';
}

void JsonWriter::beginArray() {
  prepareValue();
  Buffer += '[';
  NeedComma.push_back(false);
}

void JsonWriter::endArray() {
  NeedComma.pop_back();
  Buffer += ']';
}

void JsonWriter::key(std::string_view K) {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Buffer += ',';
    NeedComma.back() = true;
  }
  Buffer += '"';
  Buffer += escapeString(K);
  Buffer += "\":";
  PendingKey = true;
}

void JsonWriter::value(std::string_view V) {
  prepareValue();
  Buffer += '"';
  Buffer += escapeString(V);
  Buffer += '"';
}

void JsonWriter::value(int64_t V) {
  prepareValue();
  Buffer += std::to_string(V);
}

void JsonWriter::rawValue(std::string_view Json) {
  prepareValue();
  Buffer += Json;
}

void JsonWriter::value(double V) {
  prepareValue();
  char Tmp[64];
  std::snprintf(Tmp, sizeof(Tmp), "%.6g", V);
  Buffer += Tmp;
}

void JsonWriter::value(bool V) {
  prepareValue();
  Buffer += V ? "true" : "false";
}

void JsonWriter::nullValue() {
  prepareValue();
  Buffer += "null";
}

//===----------------------------------------------------------------------===
// Parsing
//===----------------------------------------------------------------------===

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Val] : Entries)
    if (Name == Key)
      return &Val;
  return nullptr;
}

std::string JsonValue::getString(std::string_view Key,
                                 std::string Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? V->stringValue() : std::move(Default);
}

double JsonValue::getNumber(std::string_view Key, double Default) const {
  const JsonValue *V = get(Key);
  return V && V->isNumber() ? V->numberValue() : Default;
}

bool JsonValue::getBool(std::string_view Key, bool Default) const {
  const JsonValue *V = get(Key);
  return V && V->isBool() ? V->boolValue() : Default;
}

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.Flag = B;
  return V;
}

JsonValue JsonValue::makeNumber(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> Xs) {
  JsonValue V;
  V.K = Kind::Array;
  V.Items = std::move(Xs);
  return V;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> Es) {
  JsonValue V;
  V.K = Kind::Object;
  V.Entries = std::move(Es);
  return V;
}

namespace {

/// Recursive-descent JSON parser over a string_view. Depth-capped so a
/// hostile cache entry cannot blow the stack.
class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  Result<JsonValue> parse() {
    Result<JsonValue> V = parseValue(0);
    if (!V.ok())
      return V;
    skipWs();
    if (Pos != Text.size())
      return err("trailing characters after document");
    return V;
  }

private:
  static constexpr size_t MaxDepth = 64;

  Error err(const std::string &Msg) {
    return Error("json: " + Msg + " at offset " + std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view W) {
    if (Text.substr(Pos, W.size()) == W) {
      Pos += W.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> parseValue(size_t Depth) {
    if (Depth > MaxDepth)
      return err("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return err("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      Result<std::string> S = parseString();
      if (!S.ok())
        return Error(S.error());
      return JsonValue::makeString(S.take());
    }
    if (consumeWord("true"))
      return JsonValue::makeBool(true);
    if (consumeWord("false"))
      return JsonValue::makeBool(false);
    if (consumeWord("null"))
      return JsonValue::makeNull();
    return parseNumber();
  }

  Result<JsonValue> parseObject(size_t Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, JsonValue>> Entries;
    skipWs();
    if (consume('}'))
      return JsonValue::makeObject(std::move(Entries));
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return err("expected object key");
      Result<std::string> Key = parseString();
      if (!Key.ok())
        return Error(Key.error());
      skipWs();
      if (!consume(':'))
        return err("expected ':'");
      Result<JsonValue> Val = parseValue(Depth + 1);
      if (!Val.ok())
        return Val;
      Entries.emplace_back(Key.take(), Val.take());
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return JsonValue::makeObject(std::move(Entries));
      return err("expected ',' or '}'");
    }
  }

  Result<JsonValue> parseArray(size_t Depth) {
    ++Pos; // '['
    std::vector<JsonValue> Items;
    skipWs();
    if (consume(']'))
      return JsonValue::makeArray(std::move(Items));
    for (;;) {
      Result<JsonValue> Val = parseValue(Depth + 1);
      if (!Val.ok())
        return Val;
      Items.push_back(Val.take());
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return JsonValue::makeArray(std::move(Items));
      return err("expected ',' or ']'");
    }
  }

  Result<std::string> parseString() {
    ++Pos; // opening quote
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return err("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return err("bad \\u escape");
        }
        // UTF-8 encode the code point (surrogate pairs are not combined;
        // the writer never emits them).
        if (Code < 0x80) {
          Out += char(Code);
        } else if (Code < 0x800) {
          Out += char(0xc0 | (Code >> 6));
          Out += char(0x80 | (Code & 0x3f));
        } else {
          Out += char(0xe0 | (Code >> 12));
          Out += char(0x80 | ((Code >> 6) & 0x3f));
          Out += char(0x80 | (Code & 0x3f));
        }
        break;
      }
      default:
        return err("bad escape character");
      }
    }
    return err("unterminated string");
  }

  Result<JsonValue> parseNumber() {
    size_t Start = Pos;
    (void)consume('-');
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return err("expected a value");
    std::string Num(Text.substr(Start, Pos - Start));
    errno = 0;
    char *End = nullptr;
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size() || errno == ERANGE) {
      Pos = Start;
      return err("malformed number");
    }
    return JsonValue::makeNumber(V);
  }

  std::string_view Text;
  size_t Pos = 0;
};

} // namespace

Result<JsonValue> parseJson(std::string_view Text) {
  return JsonParser(Text).parse();
}

} // namespace reflex
