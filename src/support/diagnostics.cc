//===- support/diagnostics.cc - Diagnostic engine --------------*- C++ -*-===//

#include "support/diagnostics.h"

#include <sstream>

namespace reflex {

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Note:
    return "note";
  }
  return "unknown";
}

/// Returns the \p Line-th (1-based) line of \p Source, without newline.
static std::string_view sourceLine(std::string_view Source, uint32_t Line) {
  size_t Pos = 0;
  for (uint32_t I = 1; I < Line; ++I) {
    size_t Next = Source.find('\n', Pos);
    if (Next == std::string_view::npos)
      return {};
    Pos = Next + 1;
  }
  size_t End = Source.find('\n', Pos);
  if (End == std::string_view::npos)
    End = Source.size();
  return Source.substr(Pos, End - Pos);
}

std::string DiagnosticEngine::render(std::string_view BufferName,
                                     std::string_view Source) const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << BufferName << ":" << D.Loc.str() << ": "
       << severityName(D.Severity) << ": " << D.Message << "\n";
    if (!Source.empty() && D.Loc.isValid()) {
      std::string_view LineText = sourceLine(Source, D.Loc.Line);
      if (!LineText.empty()) {
        OS << "  " << LineText << "\n  ";
        for (uint32_t I = 1; I < D.Loc.Col; ++I)
          OS << ' ';
        OS << "^\n";
      }
    }
  }
  return OS.str();
}

} // namespace reflex
