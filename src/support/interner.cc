//===- support/interner.cc - String interning -------------------*- C++ -*-===//

#include "support/interner.h"

#include <cassert>

namespace reflex {

StringInterner::StringInterner() {
  // Reserve symbol 0 for the empty string so that a default-constructed
  // Symbol is always valid.
  Strings.emplace_back();
  Index.emplace(Strings.back(), 0);
}

Symbol StringInterner::intern(std::string_view S) {
  auto It = Index.find(S);
  if (It != Index.end())
    return Symbol{It->second};
  // Note: the string_view key must reference the stored std::string, whose
  // buffer is stable because we only ever append to Strings and the string
  // contents live on the heap.
  Strings.emplace_back(S);
  uint32_t Id = static_cast<uint32_t>(Strings.size() - 1);
  Index.emplace(Strings.back(), Id);
  return Symbol{Id};
}

const std::string &StringInterner::str(Symbol Sym) const {
  assert(Sym.Id < Strings.size() && "symbol from a different interner?");
  return Strings[Sym.Id];
}

} // namespace reflex
