//===- support/interner.cc - String interning -------------------*- C++ -*-===//

#include "support/interner.h"

#include <cassert>

namespace reflex {

StringInterner::StringInterner() {
  // Reserve symbol 0 for the empty string so that a default-constructed
  // Symbol is always valid.
  Strings.emplace_back();
  Index.emplace(Strings.back(), 0);
}

StringInterner::StringInterner(const StringInterner *B)
    : Base(B), BaseSize(static_cast<uint32_t>(B->size())) {
  // The base already holds symbol 0 (the empty string); the overlay must
  // not shadow it, so it starts empty and offsets everything it adds.
}

Symbol StringInterner::intern(std::string_view S) {
  if (Base) {
    // Read-only probe of the (frozen) base first: shared strings keep
    // their base ids so symbols stay interchangeable across layers.
    auto BIt = Base->Index.find(S);
    if (BIt != Base->Index.end())
      return Symbol{BIt->second};
  }
  auto It = Index.find(S);
  if (It != Index.end())
    return Symbol{It->second};
  // Note: the string_view key must reference the stored std::string, whose
  // buffer is stable because we only ever append to Strings and the string
  // contents live on the heap.
  Strings.emplace_back(S);
  uint32_t Id = BaseSize + static_cast<uint32_t>(Strings.size() - 1);
  Index.emplace(Strings.back(), Id);
  return Symbol{Id};
}

const std::string &StringInterner::str(Symbol Sym) const {
  if (Base && Sym.Id < BaseSize)
    return Base->str(Sym);
  assert(Sym.Id - BaseSize < Strings.size() &&
         "symbol from a different interner?");
  return Strings[Sym.Id - BaseSize];
}

} // namespace reflex
