//===- support/sha256.h - SHA-256 content hashing ---------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained SHA-256 (FIPS 180-4) implementation used to derive
/// content-addressed keys for the persistent proof cache
/// (service/proofcache.h). Collision resistance is what makes "same key
/// => same (code, property, options)" a sound cache assumption; the cache
/// additionally re-validates hits with the certificate checker, so even a
/// collision (or a tampered entry) cannot smuggle in a wrong verdict.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_SHA256_H
#define REFLEX_SUPPORT_SHA256_H

#include <cstdint>
#include <string>
#include <string_view>

namespace reflex {

/// Incremental SHA-256 hasher. Feed data with update(), finish with
/// hexDigest(). A default-constructed hasher is ready to use.
class Sha256 {
public:
  Sha256();

  /// Absorbs \p Data. May be called repeatedly.
  void update(std::string_view Data);

  /// Convenience for hashing length-delimited fields: absorbs the length
  /// followed by the bytes, so concatenation ambiguities ("ab"+"c" vs
  /// "a"+"bc") produce distinct digests.
  void updateField(std::string_view Data);

  /// Finalizes and returns the 64-character lowercase hex digest. The
  /// hasher must not be used afterwards.
  std::string hexDigest();

private:
  void compress(const uint8_t *Block);

  uint32_t State[8];
  uint64_t TotalBytes = 0;
  uint8_t Buf[64];
  size_t BufLen = 0;
};

/// One-shot convenience: the hex SHA-256 of \p Data.
std::string sha256Hex(std::string_view Data);

} // namespace reflex

#endif // REFLEX_SUPPORT_SHA256_H
