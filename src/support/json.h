//===- support/json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer used to export proof certificates and
/// bench results, plus a small recursive-descent parser (JsonValue /
/// parseJson) used by the persistent proof cache to read its own entries
/// back. The parser accepts standard JSON and is the inverse of the
/// writer; it exists for cache entries and tooling, not as a general
/// interchange layer.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_JSON_H
#define REFLEX_SUPPORT_JSON_H

#include "support/result.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reflex {

/// Emits well-formed JSON into an internal buffer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.value("AuthBeforeTerm");
///   W.key("cases"); W.beginArray(); ... W.endArray();
///   W.endObject();
///   std::string Out = W.take();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(std::string_view K);
  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(int64_t V);
  void value(unsigned V) { value(static_cast<int64_t>(V)); }
  void value(double V);
  void value(bool V);
  void nullValue();
  /// Splices \p Json into the output verbatim (no quoting, no escaping).
  /// For embedding an already-serialized document — e.g. a certificate's
  /// exported JSON — as a value without re-encoding it as a string. The
  /// caller vouches that \p Json is itself well-formed JSON.
  void rawValue(std::string_view Json);

  /// Convenience: key + string value. The const char* overload exists so
  /// string literals do not decay into the bool overload.
  void field(std::string_view K, std::string_view V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, const char *V) {
    key(K);
    value(std::string_view(V));
  }
  void field(std::string_view K, int64_t V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, bool V) {
    key(K);
    value(V);
  }

  const std::string &str() const { return Buffer; }
  std::string take() { return std::move(Buffer); }

private:
  void prepareValue();

  std::string Buffer;
  // Stack of "needs comma before next element" flags, one per open
  // container.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

/// A parsed JSON document node. Objects preserve key order (entries are
/// stored as a vector of pairs); duplicate keys keep the first occurrence
/// on lookup.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool boolValue() const { return Flag; }
  double numberValue() const { return Num; }
  const std::string &stringValue() const { return Str; }
  const std::vector<JsonValue> &items() const { return Items; }
  const std::vector<std::pair<std::string, JsonValue>> &entries() const {
    return Entries;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;

  /// Typed convenience getters for object members, with defaults.
  std::string getString(std::string_view Key,
                        std::string Default = "") const;
  double getNumber(std::string_view Key, double Default = 0) const;
  bool getBool(std::string_view Key, bool Default = false) const;

  // Construction (used by the parser; callers normally only read).
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool B);
  static JsonValue makeNumber(double N);
  static JsonValue makeString(std::string S);
  static JsonValue makeArray(std::vector<JsonValue> Xs);
  static JsonValue
  makeObject(std::vector<std::pair<std::string, JsonValue>> Es);

private:
  Kind K = Kind::Null;
  bool Flag = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Entries;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Errors carry a byte offset.
Result<JsonValue> parseJson(std::string_view Text);

} // namespace reflex

#endif // REFLEX_SUPPORT_JSON_H
