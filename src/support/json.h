//===- support/json.h - Streaming JSON writer -------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal streaming JSON writer used to export proof certificates and
/// bench results. Write-only; no parsing (nothing in the system consumes
/// JSON, it is an audit artifact).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_JSON_H
#define REFLEX_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace reflex {

/// Emits well-formed JSON into an internal buffer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject();
///   W.key("name"); W.value("AuthBeforeTerm");
///   W.key("cases"); W.beginArray(); ... W.endArray();
///   W.endObject();
///   std::string Out = W.take();
/// \endcode
class JsonWriter {
public:
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  void key(std::string_view K);
  void value(std::string_view V);
  void value(const char *V) { value(std::string_view(V)); }
  void value(int64_t V);
  void value(unsigned V) { value(static_cast<int64_t>(V)); }
  void value(double V);
  void value(bool V);
  void nullValue();

  /// Convenience: key + string value. The const char* overload exists so
  /// string literals do not decay into the bool overload.
  void field(std::string_view K, std::string_view V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, const char *V) {
    key(K);
    value(std::string_view(V));
  }
  void field(std::string_view K, int64_t V) {
    key(K);
    value(V);
  }
  void field(std::string_view K, bool V) {
    key(K);
    value(V);
  }

  const std::string &str() const { return Buffer; }
  std::string take() { return std::move(Buffer); }

private:
  void prepareValue();

  std::string Buffer;
  // Stack of "needs comma before next element" flags, one per open
  // container.
  std::vector<bool> NeedComma;
  bool PendingKey = false;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_JSON_H
