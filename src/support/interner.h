//===- support/interner.h - String interning --------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner producing small integer Symbol handles. The symbolic
/// term core (sym/term.h) interns every identifier and string literal so
/// that term equality and hashing are O(1).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_INTERNER_H
#define REFLEX_SUPPORT_INTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace reflex {

/// A handle to an interned string. Symbols from the same interner compare
/// equal iff their strings are equal.
struct Symbol {
  uint32_t Id = 0;

  bool operator==(const Symbol &Other) const = default;
};

/// Interns strings and hands out stable Symbol handles.
///
/// An interner may be layered on top of a frozen base interner (see the
/// overlay constructor): base symbols resolve through the base, and new
/// strings get ids past the base's range. Symbols are therefore
/// interchangeable between the base and any overlay layered on it.
class StringInterner {
public:
  StringInterner();

  /// Overlay constructor: layer this interner on top of \p Base. The base
  /// must outlive the overlay and must not grow while the overlay exists
  /// (the overlay snapshots its size). Strings already interned in the
  /// base keep their ids; new strings get ids >= Base->size().
  explicit StringInterner(const StringInterner *Base);

  /// Interns \p S, returning its symbol. Symbol 0 is the empty string.
  Symbol intern(std::string_view S);

  /// Returns the string for \p Sym. The reference is stable for the
  /// lifetime of the interner.
  const std::string &str(Symbol Sym) const;

  size_t size() const { return BaseSize + Strings.size(); }

private:
  // Deque: element addresses are stable under growth, so both the
  // returned references and the string_view keys in Index stay valid
  // (short strings live in the SSO buffer inside the element itself).
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Index;
  const StringInterner *Base = nullptr;
  uint32_t BaseSize = 0;
};

} // namespace reflex

namespace std {
template <> struct hash<reflex::Symbol> {
  size_t operator()(const reflex::Symbol &S) const {
    return std::hash<uint32_t>()(S.Id);
  }
};
} // namespace std

#endif // REFLEX_SUPPORT_INTERNER_H
