//===- support/strings.h - String utilities ---------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the frontend, printers, and benches.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_STRINGS_H
#define REFLEX_SUPPORT_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace reflex {

/// Splits \p S on \p Sep; empty pieces are kept.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view S);

/// Joins \p Pieces with \p Sep between them.
std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Sep);

/// Escapes a string for inclusion in double quotes (backslash, quote,
/// newline, tab).
std::string escapeString(std::string_view S);

/// Counts the non-blank lines of \p S (used by the Table 1 bench to report
/// kernel sizes the way the paper counts lines of code).
unsigned countCodeLines(std::string_view S);

/// True if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

} // namespace reflex

#endif // REFLEX_SUPPORT_STRINGS_H
