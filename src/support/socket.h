//===- support/socket.h - Unix-domain socket helpers ------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over AF_UNIX stream sockets, used by the `reflexd`
/// verification daemon (src/daemon) and its client. The framing the
/// daemon protocol needs is newline-delimited: readLine() accumulates
/// bytes until '\n' under a hard size cap, so a malformed or hostile
/// peer can cost at most one frame's worth of memory. Writes suppress
/// SIGPIPE (a peer that disconnected mid-response is an error return,
/// never a process kill), and peerClosed() gives the daemon a
/// non-blocking way to notice a client that vanished while its request
/// is still being verified — the hook request cancellation hangs off.
///
/// Robustness contract: every read/write/accept/connect/poll retries
/// EINTR; short reads and short writes are absorbed by the transfer
/// loops. An optional per-socket IO timeout bounds *progress*, not
/// idleness: a frame that has started must finish within the window
/// (defeats slow-loris trickling), and every write must make progress
/// within the window (defeats a stalled reader pinning a handler
/// thread) — but a connection idle *between* frames waits indefinitely
/// (that is a keep-alive, not an attack).
///
/// Chaos hooks: a socket can carry a support/faultinject FaultPlan;
/// sites "sock.read"/"sock.write" are consulted per operation (keyed by
/// a caller-chosen tag plus a per-direction operation counter, so
/// decisions stay independent of thread interleaving). Fail injects a
/// connection reset, Truncate forces 1-8-byte short reads/writes through
/// the retry loops, Delay sleeps a small deterministic interval.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_SOCKET_H
#define REFLEX_SUPPORT_SOCKET_H

#include "support/faultinject.h"
#include "support/result.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace reflex {

/// A connected AF_UNIX stream socket (one endpoint). Move-only; closes
/// its descriptor on destruction.
class UnixSocket {
public:
  UnixSocket() = default;
  explicit UnixSocket(int FD) : FD(FD) {}
  ~UnixSocket() { close(); }

  UnixSocket(UnixSocket &&O) noexcept
      : FD(O.FD), Buf(std::move(O.Buf)), TimeoutMs(O.TimeoutMs),
        Faults(O.Faults), FaultTag(std::move(O.FaultTag)),
        ReadOps(O.ReadOps), WriteOps(O.WriteOps) {
    O.FD = -1;
    O.Faults = nullptr;
  }
  UnixSocket &operator=(UnixSocket &&O) noexcept {
    if (this != &O) {
      close();
      FD = O.FD;
      Buf = std::move(O.Buf);
      TimeoutMs = O.TimeoutMs;
      Faults = O.Faults;
      FaultTag = std::move(O.FaultTag);
      ReadOps = O.ReadOps;
      WriteOps = O.WriteOps;
      O.FD = -1;
      O.Faults = nullptr;
    }
    return *this;
  }
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;

  /// Connects to the daemon listening at \p Path (EINTR-safe: an
  /// interrupted connect is completed via poll + SO_ERROR).
  static Result<UnixSocket> connectTo(const std::string &Path);

  bool valid() const { return FD >= 0; }
  int fd() const { return FD; }
  void close();

  /// Progress timeout for reads and writes, in ms (0 = none). Reads: a
  /// frame whose first byte has arrived must complete within the window.
  /// Writes: each write must transfer at least one byte per window.
  /// Idle waits for a *new* frame are unaffected.
  void setIoTimeoutMs(uint64_t Ms) { TimeoutMs = Ms; }
  uint64_t ioTimeoutMs() const { return TimeoutMs; }

  /// Attaches a fault-injection plan consulted at "sock.read" /
  /// "sock.write", keyed "<tag>#<op-index>". \p Plan must outlive the
  /// socket; null detaches.
  void setFaultPlan(const FaultPlan *Plan, std::string Tag = "sock") {
    Faults = Plan;
    FaultTag = std::move(Tag);
  }

  /// Writes all of \p Bytes (retrying short writes and EINTR), with
  /// SIGPIPE suppressed — a vanished peer surfaces as an Error. With an
  /// IO timeout set, a peer that accepts no bytes for a full window is
  /// an Error ("send timeout").
  Result<void> sendAll(std::string_view Bytes);

  /// Reads one newline-terminated frame into \p Out (newline stripped).
  /// Returns false on clean EOF before any byte of a new frame; errors
  /// on IO failure, on EOF mid-frame ("truncated frame"), on a frame
  /// exceeding \p MaxBytes ("frame too large" — the connection is
  /// unusable afterwards, since the rest of the oversized frame cannot
  /// be resynchronized), and — with an IO timeout set — on a started
  /// frame that fails to finish within the window ("read timeout").
  Result<bool> readLine(std::string &Out, size_t MaxBytes);

  /// Non-blocking probe: true once the peer has shut down its write end
  /// (a pending pipelined request does NOT count as closed). Used by the
  /// daemon to cancel verification jobs whose client disconnected.
  bool peerClosed() const;

private:
  FaultKind nextFault(const char *Site, uint64_t Op, uint64_t *ChunkCap);

  int FD = -1;
  /// Read-ahead spilled past the last '\n' by readLine's recv calls.
  std::string Buf;
  uint64_t TimeoutMs = 0;
  const FaultPlan *Faults = nullptr;
  std::string FaultTag;
  uint64_t ReadOps = 0;
  uint64_t WriteOps = 0;
};

/// A bound, listening AF_UNIX socket. Unlinks a pre-existing socket file
/// at bind time (a stale file from a crashed daemon would otherwise make
/// the path unusable forever) and unlinks its own file on destruction.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener() { close(); }

  UnixListener(UnixListener &&O) noexcept
      : FD(O.FD), SockPath(std::move(O.SockPath)) {
    O.FD = -1;
    O.SockPath.clear();
  }
  UnixListener &operator=(UnixListener &&O) noexcept {
    if (this != &O) {
      close();
      FD = O.FD;
      SockPath = std::move(O.SockPath);
      O.FD = -1;
      O.SockPath.clear();
    }
    return *this;
  }
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens at \p Path. AF_UNIX paths are limited to
  /// ~107 bytes; longer paths are rejected with an Error.
  static Result<UnixListener> bindAt(const std::string &Path);

  bool valid() const { return FD >= 0; }
  const std::string &path() const { return SockPath; }

  /// Blocks for the next client. Errors once interrupt() (or close())
  /// has been called.
  Result<UnixSocket> accept();

  /// Unblocks a concurrent accept() (it returns an Error). Safe to call
  /// from another thread, including concurrently with close(): the two
  /// serialize on a lock, so interrupt() can never act on a descriptor
  /// close() already released (fd-reuse hazard).
  void interrupt();

  void close();

private:
  int FD = -1;
  std::string SockPath;
  /// Serializes interrupt() against close(). accept() deliberately does
  /// not take it (it blocks); the owner must not close() while an
  /// accept() is in flight on another thread — interrupt() first, then
  /// close() once the accept loop has exited.
  std::mutex Mu;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_SOCKET_H
