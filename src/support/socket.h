//===- support/socket.h - Unix-domain socket helpers ------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over AF_UNIX stream sockets, used by the `reflexd`
/// verification daemon (src/daemon) and its client. The framing the
/// daemon protocol needs is newline-delimited: readLine() accumulates
/// bytes until '\n' under a hard size cap, so a malformed or hostile
/// peer can cost at most one frame's worth of memory. Writes suppress
/// SIGPIPE (a peer that disconnected mid-response is an error return,
/// never a process kill), and peerClosed() gives the daemon a
/// non-blocking way to notice a client that vanished while its request
/// is still being verified — the hook request cancellation hangs off.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_SOCKET_H
#define REFLEX_SUPPORT_SOCKET_H

#include "support/result.h"

#include <mutex>
#include <string>
#include <string_view>

namespace reflex {

/// A connected AF_UNIX stream socket (one endpoint). Move-only; closes
/// its descriptor on destruction.
class UnixSocket {
public:
  UnixSocket() = default;
  explicit UnixSocket(int FD) : FD(FD) {}
  ~UnixSocket() { close(); }

  UnixSocket(UnixSocket &&O) noexcept : FD(O.FD), Buf(std::move(O.Buf)) {
    O.FD = -1;
  }
  UnixSocket &operator=(UnixSocket &&O) noexcept {
    if (this != &O) {
      close();
      FD = O.FD;
      Buf = std::move(O.Buf);
      O.FD = -1;
    }
    return *this;
  }
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;

  /// Connects to the daemon listening at \p Path.
  static Result<UnixSocket> connectTo(const std::string &Path);

  bool valid() const { return FD >= 0; }
  int fd() const { return FD; }
  void close();

  /// Writes all of \p Bytes (retrying short writes and EINTR), with
  /// SIGPIPE suppressed — a vanished peer surfaces as an Error.
  Result<void> sendAll(std::string_view Bytes);

  /// Reads one newline-terminated frame into \p Out (newline stripped).
  /// Returns false on clean EOF before any byte of a new frame; errors
  /// on IO failure, on EOF mid-frame ("truncated frame"), and on a frame
  /// exceeding \p MaxBytes ("frame too large" — the connection is
  /// unusable afterwards, since the rest of the oversized frame cannot
  /// be resynchronized).
  Result<bool> readLine(std::string &Out, size_t MaxBytes);

  /// Non-blocking probe: true once the peer has shut down its write end
  /// (a pending pipelined request does NOT count as closed). Used by the
  /// daemon to cancel verification jobs whose client disconnected.
  bool peerClosed() const;

private:
  int FD = -1;
  /// Read-ahead spilled past the last '\n' by readLine's recv calls.
  std::string Buf;
};

/// A bound, listening AF_UNIX socket. Unlinks a pre-existing socket file
/// at bind time (a stale file from a crashed daemon would otherwise make
/// the path unusable forever) and unlinks its own file on destruction.
class UnixListener {
public:
  UnixListener() = default;
  ~UnixListener() { close(); }

  UnixListener(UnixListener &&O) noexcept
      : FD(O.FD), SockPath(std::move(O.SockPath)) {
    O.FD = -1;
    O.SockPath.clear();
  }
  UnixListener &operator=(UnixListener &&O) noexcept {
    if (this != &O) {
      close();
      FD = O.FD;
      SockPath = std::move(O.SockPath);
      O.FD = -1;
      O.SockPath.clear();
    }
    return *this;
  }
  UnixListener(const UnixListener &) = delete;
  UnixListener &operator=(const UnixListener &) = delete;

  /// Binds and listens at \p Path. AF_UNIX paths are limited to
  /// ~107 bytes; longer paths are rejected with an Error.
  static Result<UnixListener> bindAt(const std::string &Path);

  bool valid() const { return FD >= 0; }
  const std::string &path() const { return SockPath; }

  /// Blocks for the next client. Errors once interrupt() (or close())
  /// has been called.
  Result<UnixSocket> accept();

  /// Unblocks a concurrent accept() (it returns an Error). Safe to call
  /// from another thread, including concurrently with close(): the two
  /// serialize on a lock, so interrupt() can never act on a descriptor
  /// close() already released (fd-reuse hazard).
  void interrupt();

  void close();

private:
  int FD = -1;
  std::string SockPath;
  /// Serializes interrupt() against close(). accept() deliberately does
  /// not take it (it blocks); the owner must not close() while an
  /// accept() is in flight on another thread — interrupt() first, then
  /// close() once the accept loop has exited.
  std::mutex Mu;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_SOCKET_H
