//===- support/result.h - Lightweight error-or-value type ------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Result<T>, the error-handling currency of the library. Library
/// code does not throw exceptions (per the LLVM coding standards this repo
/// follows); fallible operations return Result<T> carrying either a value
/// or a human-readable error message.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SUPPORT_RESULT_H
#define REFLEX_SUPPORT_RESULT_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace reflex {

/// An error message produced by a fallible operation.
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {}

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a value of type T or an Error. Modeled on llvm::Expected but
/// without the "must check" machinery; asserts on misuse instead.
template <typename T> class Result {
public:
  /*implicit*/ Result(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Result(Error E) : Err(std::move(E)) {}

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &operator*() {
    assert(ok() && "dereferencing an error Result");
    return *Value;
  }
  const T &operator*() const {
    assert(ok() && "dereferencing an error Result");
    return *Value;
  }
  T *operator->() {
    assert(ok() && "dereferencing an error Result");
    return &*Value;
  }
  const T *operator->() const {
    assert(ok() && "dereferencing an error Result");
    return &*Value;
  }

  /// Moves the contained value out. Only valid when ok().
  T take() {
    assert(ok() && "taking from an error Result");
    return std::move(*Value);
  }

  const std::string &error() const {
    assert(!ok() && "reading error from an ok Result");
    return Err->message();
  }

private:
  std::optional<T> Value;
  std::optional<Error> Err;
};

/// Result specialization for operations with no interesting value.
template <> class Result<void> {
public:
  Result() = default;
  /*implicit*/ Result(Error E) : Err(std::move(E)) {}

  bool ok() const { return !Err.has_value(); }
  explicit operator bool() const { return ok(); }

  const std::string &error() const {
    assert(!ok() && "reading error from an ok Result");
    return Err->message();
  }

private:
  std::optional<Error> Err;
};

} // namespace reflex

#endif // REFLEX_SUPPORT_RESULT_H
