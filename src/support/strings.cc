//===- support/strings.cc - String utilities --------------------*- C++ -*-===//

#include "support/strings.h"

namespace reflex {

std::vector<std::string> splitString(std::string_view S, char Sep) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (true) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Out.emplace_back(S.substr(Pos));
      return Out;
    }
    Out.emplace_back(S.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

std::string_view trimString(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() &&
         (S[Begin] == ' ' || S[Begin] == '\t' || S[Begin] == '\n' ||
          S[Begin] == '\r'))
    ++Begin;
  size_t End = S.size();
  while (End > Begin &&
         (S[End - 1] == ' ' || S[End - 1] == '\t' || S[End - 1] == '\n' ||
          S[End - 1] == '\r'))
    --End;
  return S.substr(Begin, End - Begin);
}

std::string joinStrings(const std::vector<std::string> &Pieces,
                        std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Out.append(Sep);
    Out.append(Pieces[I]);
  }
  return Out;
}

std::string escapeString(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

unsigned countCodeLines(std::string_view S) {
  unsigned Count = 0;
  for (const std::string &Line : splitString(S, '\n')) {
    std::string_view T = trimString(Line);
    if (!T.empty() && !startsWith(T, "#"))
      ++Count;
  }
  return Count;
}

bool startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

} // namespace reflex
