//===- sym/term.cc - Hash-consed symbolic terms -----------------*- C++ -*-===//

#include "sym/term.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>

namespace reflex {

namespace {

uint64_t hashCombine(uint64_t H, uint64_t V) {
  return H ^ (V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2));
}

uint64_t hashNode(const TermNode &N) {
  uint64_t H = static_cast<uint64_t>(N.Kind);
  H = hashCombine(H, static_cast<uint64_t>(N.Ty));
  H = hashCombine(H, static_cast<uint64_t>(N.Tag));
  H = hashCombine(H, static_cast<uint64_t>(N.Ident));
  H = hashCombine(H, static_cast<uint64_t>(N.IntVal));
  H = hashCombine(H, N.Str.Id);
  for (TermRef Op : N.Ops)
    H = hashCombine(H, Op->Id);
  return H;
}

bool sameNode(const TermNode &A, const TermNode &B) {
  return A.Kind == B.Kind && A.Ty == B.Ty && A.Tag == B.Tag &&
         A.Ident == B.Ident && A.IntVal == B.IntVal && A.Str == B.Str &&
         A.Ops == B.Ops;
}

} // namespace

TermContext::TermContext(const TermContext *B)
    : Simplify(B->Simplify), Base(B),
      BaseCount(static_cast<uint32_t>(B->termCount())), Strings(&B->Strings),
      FreshSerial(B->FreshSerial), CompSerial(B->CompSerial) {
  // The base must be immutable while overlays read it lock-free. An
  // unfrozen base is a programming error, not a recoverable condition.
  if (!B->Frozen) {
    std::fprintf(stderr,
                 "reflex: TermContext overlay layered on an unfrozen base\n");
    std::abort();
  }
}

TermRef TermContext::findExisting(uint64_t H, const TermNode &N) const {
  if (Base)
    if (TermRef Hit = Base->findExisting(H, N))
      return Hit;
  auto It = HashCons.find(H);
  if (It == HashCons.end())
    return nullptr;
  for (TermRef Existing : It->second)
    if (sameNode(*Existing, N))
      return Existing;
  return nullptr;
}

TermRef TermContext::make(TermNode N) {
  uint64_t H = hashNode(N);
  if (TermRef Existing = findExisting(H, N))
    return Existing;
  if (Frozen) {
    // Unconditional (not assert): must hold in release builds too, since
    // the thread-safety of shared frozen abstractions depends on it.
    std::fprintf(stderr, "reflex: term built on a frozen TermContext "
                         "without an overlay\n");
    std::abort();
  }
  N.Id = BaseCount + static_cast<uint32_t>(Nodes.size());
  Nodes.push_back(std::move(N));
  TermRef Ref = &Nodes.back();
  HashCons[H].push_back(Ref);
  return Ref;
}

TermRef TermContext::numLit(int64_t V) {
  TermNode N;
  N.Kind = TermKind::NumLit;
  N.Ty = BaseType::Num;
  N.IntVal = V;
  return make(std::move(N));
}

TermRef TermContext::strLit(std::string_view S) {
  TermNode N;
  N.Kind = TermKind::StrLit;
  N.Ty = BaseType::Str;
  N.Str = Strings.intern(S);
  return make(std::move(N));
}

TermRef TermContext::boolLit(bool B) {
  TermNode N;
  N.Kind = TermKind::BoolLit;
  N.Ty = BaseType::Bool;
  N.IntVal = B ? 1 : 0;
  return make(std::move(N));
}

TermRef TermContext::lit(const Value &V) {
  switch (V.type()) {
  case BaseType::Num:
    return numLit(V.asNum());
  case BaseType::Str:
    return strLit(V.asStr());
  case BaseType::Bool:
    return boolLit(V.asBool());
  default:
    assert(false && "no literal terms for fdesc/comp values");
    return nullptr;
  }
}

TermRef TermContext::findNamedSym(const std::string &Key) const {
  for (const TermContext *C = this; C; C = C->Base) {
    auto It = C->NamedSyms.find(Key);
    if (It != C->NamedSyms.end())
      return It->second;
  }
  return nullptr;
}

TermRef TermContext::stateSym(std::string_view Name, BaseType Ty) {
  std::string Key = "s:" + std::string(Name);
  if (TermRef Existing = findNamedSym(Key))
    return Existing;
  TermNode N;
  N.Kind = TermKind::SymVar;
  N.Ty = Ty;
  N.Tag = SymTag::State;
  N.Str = Strings.intern(Name);
  TermRef Ref = make(std::move(N));
  NamedSyms.emplace(std::move(Key), Ref);
  return Ref;
}

TermRef TermContext::patSym(std::string_view Name, BaseType Ty) {
  std::string Key = "p:" + std::string(Name);
  if (TermRef Existing = findNamedSym(Key))
    return Existing;
  TermNode N;
  N.Kind = TermKind::SymVar;
  N.Ty = Ty;
  N.Tag = SymTag::PatVar;
  N.Str = Strings.intern(Name);
  TermRef Ref = make(std::move(N));
  NamedSyms.emplace(std::move(Key), Ref);
  return Ref;
}

TermRef TermContext::freshSym(std::string_view Prefix, BaseType Ty) {
  TermNode N;
  N.Kind = TermKind::SymVar;
  N.Ty = Ty;
  N.Tag = SymTag::Fresh;
  N.Str = Strings.intern(Prefix);
  N.IntVal = static_cast<int64_t>(FreshSerial++);
  return make(std::move(N));
}

TermRef TermContext::hypSym(std::string_view Name, BaseType Ty) {
  TermNode N;
  N.Kind = TermKind::SymVar;
  N.Ty = Ty;
  N.Tag = SymTag::Fresh;
  N.Str = Strings.intern(Name);
  N.IntVal = -1;
  return make(std::move(N));
}

TermRef TermContext::comp(std::string_view TypeName, CompIdent Ident,
                          int64_t Serial, std::vector<TermRef> Config) {
  TermNode N;
  N.Kind = TermKind::Comp;
  N.Ty = BaseType::Comp;
  N.Ident = Ident;
  N.IntVal = Serial;
  N.Str = Strings.intern(TypeName);
  N.Ops = std::move(Config);
  return make(std::move(N));
}

TermRef TermContext::eq(TermRef A, TermRef B) {
  assert(A->Ty == B->Ty && "ill-typed equality");
  if (Simplify) {
    if (A == B)
      return trueTerm();
    if (A->isLiteral() && B->isLiteral())
      return boolLit(A == B); // hash-consed: equal literals are identical
    if (A->Kind == TermKind::Comp && B->Kind == TermKind::Comp) {
      // Distinctness from the component identity algebra.
      if (A->Str != B->Str)
        return falseTerm(); // different component types
      bool AAny = A->Ident == CompIdent::FlexAny;
      bool BAny = B->Ident == CompIdent::FlexAny;
      if (!AAny && !BAny) {
        bool ARigid = A->Ident != CompIdent::FlexPre;
        bool BRigid = B->Ident != CompIdent::FlexPre;
        if (ARigid && BRigid &&
            (A->Ident != B->Ident || A->IntVal != B->IntVal))
          return falseTerm();
        if ((A->Ident == CompIdent::NewRigid) !=
            (B->Ident == CompIdent::NewRigid))
          return falseTerm(); // new components differ from all pre-existing
      }
    }
  }
  // Normalize operand order for hash-consing.
  if (A->Id > B->Id)
    std::swap(A, B);
  TermNode N;
  N.Kind = TermKind::Eq;
  N.Ty = BaseType::Bool;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::lt(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::NumLit && B->Kind == TermKind::NumLit)
      return boolLit(A->IntVal < B->IntVal);
    if (A == B)
      return falseTerm();
  }
  TermNode N;
  N.Kind = TermKind::Lt;
  N.Ty = BaseType::Bool;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::le(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::NumLit && B->Kind == TermKind::NumLit)
      return boolLit(A->IntVal <= B->IntVal);
    if (A == B)
      return trueTerm();
  }
  TermNode N;
  N.Kind = TermKind::Le;
  N.Ty = BaseType::Bool;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::andT(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::BoolLit)
      return A->IntVal ? B : falseTerm();
    if (B->Kind == TermKind::BoolLit)
      return B->IntVal ? A : falseTerm();
    if (A == B)
      return A;
  }
  TermNode N;
  N.Kind = TermKind::And;
  N.Ty = BaseType::Bool;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::orT(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::BoolLit)
      return A->IntVal ? trueTerm() : B;
    if (B->Kind == TermKind::BoolLit)
      return B->IntVal ? trueTerm() : A;
    if (A == B)
      return A;
  }
  TermNode N;
  N.Kind = TermKind::Or;
  N.Ty = BaseType::Bool;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::notT(TermRef A) {
  if (Simplify) {
    if (A->Kind == TermKind::BoolLit)
      return boolLit(!A->IntVal);
    if (A->Kind == TermKind::Not)
      return A->Ops[0];
  }
  TermNode N;
  N.Kind = TermKind::Not;
  N.Ty = BaseType::Bool;
  N.Ops = {A};
  return make(std::move(N));
}

TermRef TermContext::add(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::NumLit && B->Kind == TermKind::NumLit)
      return numLit(A->IntVal + B->IntVal);
    if (A->Kind == TermKind::NumLit && A->IntVal == 0)
      return B;
    if (B->Kind == TermKind::NumLit && B->IntVal == 0)
      return A;
  }
  TermNode N;
  N.Kind = TermKind::Add;
  N.Ty = BaseType::Num;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::sub(TermRef A, TermRef B) {
  if (Simplify) {
    if (A->Kind == TermKind::NumLit && B->Kind == TermKind::NumLit)
      return numLit(A->IntVal - B->IntVal);
    if (B->Kind == TermKind::NumLit && B->IntVal == 0)
      return A;
    if (A == B)
      return numLit(0);
  }
  TermNode N;
  N.Kind = TermKind::Sub;
  N.Ty = BaseType::Num;
  N.Ops = {A, B};
  return make(std::move(N));
}

TermRef TermContext::substitute(
    TermRef T, const std::unordered_map<TermRef, TermRef> &Map) {
  auto It = Map.find(T);
  if (It != Map.end())
    return It->second;
  if (T->Ops.empty())
    return T;
  std::vector<TermRef> NewOps;
  NewOps.reserve(T->Ops.size());
  bool Changed = false;
  for (TermRef Op : T->Ops) {
    TermRef NewOp = substitute(Op, Map);
    Changed |= NewOp != Op;
    NewOps.push_back(NewOp);
  }
  if (!Changed)
    return T;
  switch (T->Kind) {
  case TermKind::Comp:
    return comp(Strings.str(T->Str), T->Ident, T->IntVal, std::move(NewOps));
  case TermKind::Eq:
    return eq(NewOps[0], NewOps[1]);
  case TermKind::Lt:
    return lt(NewOps[0], NewOps[1]);
  case TermKind::Le:
    return le(NewOps[0], NewOps[1]);
  case TermKind::And:
    return andT(NewOps[0], NewOps[1]);
  case TermKind::Or:
    return orT(NewOps[0], NewOps[1]);
  case TermKind::Not:
    return notT(NewOps[0]);
  case TermKind::Add:
    return add(NewOps[0], NewOps[1]);
  case TermKind::Sub:
    return sub(NewOps[0], NewOps[1]);
  default:
    assert(false && "leaf with operands?");
    return T;
  }
}

std::optional<Value> TermContext::literalValue(TermRef T) const {
  switch (T->Kind) {
  case TermKind::NumLit:
    return Value::num(T->IntVal);
  case TermKind::StrLit:
    return Value::str(Strings.str(T->Str));
  case TermKind::BoolLit:
    return Value::boolean(T->IntVal != 0);
  default:
    return std::nullopt;
  }
}

std::string TermContext::str(TermRef T) const {
  std::ostringstream OS;
  switch (T->Kind) {
  case TermKind::NumLit:
    OS << T->IntVal;
    break;
  case TermKind::StrLit:
    OS << '"' << Strings.str(T->Str) << '"';
    break;
  case TermKind::BoolLit:
    OS << (T->IntVal ? "true" : "false");
    break;
  case TermKind::SymVar:
    switch (T->Tag) {
    case SymTag::State:
      OS << Strings.str(T->Str);
      break;
    case SymTag::PatVar:
      OS << "?" << Strings.str(T->Str);
      break;
    case SymTag::Fresh:
      OS << Strings.str(T->Str) << "$" << T->IntVal;
      break;
    }
    break;
  case TermKind::Comp: {
    switch (T->Ident) {
    case CompIdent::InitRigid:
      OS << "init:";
      break;
    case CompIdent::NewRigid:
      OS << "new:";
      break;
    case CompIdent::FlexPre:
      OS << "pre:";
      break;
    case CompIdent::FlexAny:
      OS << "any:";
      break;
    }
    OS << Strings.str(T->Str) << "#" << T->IntVal;
    if (!T->Ops.empty()) {
      OS << "(";
      for (size_t I = 0; I < T->Ops.size(); ++I) {
        if (I != 0)
          OS << ", ";
        OS << str(T->Ops[I]);
      }
      OS << ")";
    }
    break;
  }
  case TermKind::Eq:
    OS << "(" << str(T->Ops[0]) << " == " << str(T->Ops[1]) << ")";
    break;
  case TermKind::Lt:
    OS << "(" << str(T->Ops[0]) << " < " << str(T->Ops[1]) << ")";
    break;
  case TermKind::Le:
    OS << "(" << str(T->Ops[0]) << " <= " << str(T->Ops[1]) << ")";
    break;
  case TermKind::And:
    OS << "(" << str(T->Ops[0]) << " && " << str(T->Ops[1]) << ")";
    break;
  case TermKind::Or:
    OS << "(" << str(T->Ops[0]) << " || " << str(T->Ops[1]) << ")";
    break;
  case TermKind::Not:
    OS << "!" << str(T->Ops[0]);
    break;
  case TermKind::Add:
    OS << "(" << str(T->Ops[0]) << " + " << str(T->Ops[1]) << ")";
    break;
  case TermKind::Sub:
    OS << "(" << str(T->Ops[0]) << " - " << str(T->Ops[1]) << ")";
    break;
  }
  return OS.str();
}

std::optional<std::vector<std::vector<Lit>>>
splitCondDNF(TermRef Cond, bool Polarity, size_t MaxDisjuncts) {
  using Dnf = std::vector<std::vector<Lit>>;

  // Atoms (and anything that is not And/Or/Not) become single literals.
  if (Cond->Kind != TermKind::And && Cond->Kind != TermKind::Or &&
      Cond->Kind != TermKind::Not) {
    if (Cond->Kind == TermKind::BoolLit) {
      bool Val = (Cond->IntVal != 0) == Polarity;
      if (Val)
        return Dnf{{}}; // one trivially-true disjunct
      return Dnf{};     // no disjuncts: false
    }
    return Dnf{{Lit(Cond, Polarity)}};
  }

  if (Cond->Kind == TermKind::Not)
    return splitCondDNF(Cond->Ops[0], !Polarity, MaxDisjuncts);

  bool IsConj = (Cond->Kind == TermKind::And) == Polarity;
  auto L = splitCondDNF(Cond->Ops[0], Polarity, MaxDisjuncts);
  auto R = splitCondDNF(Cond->Ops[1], Polarity, MaxDisjuncts);
  if (!L || !R)
    return std::nullopt;

  Dnf Out;
  if (IsConj) {
    // Cross product.
    if (L->size() * R->size() > MaxDisjuncts)
      return std::nullopt;
    for (const auto &A : *L)
      for (const auto &B : *R) {
        std::vector<Lit> Merged = A;
        Merged.insert(Merged.end(), B.begin(), B.end());
        Out.push_back(std::move(Merged));
      }
  } else {
    if (L->size() + R->size() > MaxDisjuncts)
      return std::nullopt;
    Out = std::move(*L);
    Out.insert(Out.end(), R->begin(), R->end());
  }
  return Out;
}

} // namespace reflex
