//===- sym/solver.cc - Incremental entailment engine ----------------------===//
//
// Three cooperating pieces live here:
//
//  1. The *reference solver* (solveReference + ReferenceClosure): the
//     original from-scratch decision procedure, kept verbatim as the
//     differential baseline. Every query re-builds congruence closure,
//     re-runs the congruence fixpoint scan, and re-derives bounds.
//
//  2. The *incremental core* (IncrementalCore): a persistent congruence
//     closure behind a scoped undo trail. Asserting a literal registers
//     its subterms in a watched-term signature index, merges propagate
//     through a pending queue (only terms watching a merged class are
//     re-signed), and pop() rewinds every mutation. Checks run only the
//     cheap per-query phases (diseq scan + numeric reasoning) on top of
//     the maintained closure.
//
//  3. The *reason-trail machinery*: when logging is on, every merge
//     carries its premise, Unsat answers snapshot the step sequence, and
//     replayReasonTrail() re-validates a snapshot against the query with
//     an independent minimal union-find (the checker-side trust anchor).
//
// The two solvers must agree on verdicts. Congruence closure is
// confluent, so the merge order (eager per-assert vs one fixpoint scan)
// cannot change which terms end up equated; literal/component clash
// detection depends only on class contents; and the numeric phase is run
// identically in both paths over deterministic iteration orders.
//
//===----------------------------------------------------------------------===//

#include "sym/solver.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>

namespace reflex {

namespace {

//===----------------------------------------------------------------------===//
// Shared component-identity algebra
//===----------------------------------------------------------------------===//

int rigidity(CompIdent I) {
  switch (I) {
  case CompIdent::InitRigid:
  case CompIdent::NewRigid:
    return 2;
  case CompIdent::FlexPre:
    return 1;
  case CompIdent::FlexAny:
    return 0;
  }
  return 0;
}

TermRef moreRigid(TermRef X, TermRef Y) {
  if (!X)
    return Y;
  if (!Y)
    return X;
  return rigidity(Y->Ident) > rigidity(X->Ident) ? Y : X;
}

/// Can two component terms denote the same instance?
bool compatibleComps(TermRef A, TermRef B) {
  if (A->Str != B->Str)
    return false; // different component types
  if (A->Ident == CompIdent::FlexAny || B->Ident == CompIdent::FlexAny)
    return true;
  bool ARigid = A->Ident != CompIdent::FlexPre;
  bool BRigid = B->Ident != CompIdent::FlexPre;
  if (ARigid && BRigid)
    return A->Ident == B->Ident && A->IntVal == B->IntVal;
  // One side is FlexPre: compatible unless the other is NewRigid (new
  // components are distinct from all pre-existing ones).
  return A->Ident != CompIdent::NewRigid && B->Ident != CompIdent::NewRigid;
}

/// Normalizes an order literal to Lhs < Rhs (Strict) or Lhs <= Rhs.
struct NormOrder {
  TermRef Lhs;
  TermRef Rhs;
  bool Strict;
};

std::optional<NormOrder> normOrder(const Lit &L) {
  TermRef A = L.Atom;
  if (A->Kind == TermKind::Lt)
    return L.Pos ? NormOrder{A->Ops[0], A->Ops[1], true}
                 : NormOrder{A->Ops[1], A->Ops[0], false};
  if (A->Kind == TermKind::Le)
    return L.Pos ? NormOrder{A->Ops[0], A->Ops[1], false}
                 : NormOrder{A->Ops[1], A->Ops[0], true};
  return std::nullopt;
}

uint64_t litKey(const Lit &L) {
  return (static_cast<uint64_t>(L.Atom->Id) << 1) | (L.Pos ? 1 : 0);
}

//===----------------------------------------------------------------------===//
// Reference solver (the original from-scratch algorithm)
//===----------------------------------------------------------------------===//

/// Union-find over term refs with per-class facts: the literal member (if
/// any) and a component member (if any).
class ReferenceClosure {
public:
  TermRef find(TermRef T) {
    auto It = Parent.find(T);
    if (It == Parent.end())
      return T;
    TermRef Root = find(It->second);
    It->second = Root;
    return Root;
  }

  /// Requests a merge; returns false on a detected conflict.
  bool merge(TermRef A, TermRef B) {
    Pending.emplace_back(A, B);
    return drain();
  }

  bool sameClass(TermRef A, TermRef B) { return find(A) == find(B); }

  /// The literal (if any) equated with \p T's class. A literal that never
  /// took part in a merge is its own class.
  TermRef literalOf(TermRef T) {
    TermRef R = find(T);
    if (R->isLiteral())
      return R;
    auto It = ClassLit.find(R);
    return It == ClassLit.end() ? nullptr : It->second;
  }

  /// Runs congruence closure over \p Terms until fixpoint. Returns false
  /// on conflict.
  bool congruence(const std::vector<TermRef> &Terms) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Signature: (Kind, rep of each operand) -> first term seen.
      std::map<std::vector<uintptr_t>, TermRef> Sigs;
      for (TermRef T : Terms) {
        if (T->Ops.empty() || T->Kind == TermKind::Comp)
          continue;
        std::vector<uintptr_t> Sig;
        Sig.push_back(static_cast<uintptr_t>(T->Kind));
        for (TermRef Op : T->Ops)
          Sig.push_back(reinterpret_cast<uintptr_t>(find(Op)));
        auto [It, Inserted] = Sigs.emplace(std::move(Sig), T);
        if (!Inserted && !sameClass(It->second, T)) {
          if (!merge(It->second, T))
            return false;
          Changed = true;
        }
      }
    }
    return true;
  }

private:
  /// Processes queued merges, propagating component-field equalities.
  bool drain() {
    while (!Pending.empty()) {
      auto [A, B] = Pending.back();
      Pending.pop_back();
      TermRef RA = find(A), RB = find(B);
      if (RA == RB)
        continue;

      TermRef LitA = ClassLit.count(RA) ? ClassLit[RA] : nullptr;
      TermRef LitB = ClassLit.count(RB) ? ClassLit[RB] : nullptr;
      if (RA->isLiteral())
        LitA = RA;
      if (RB->isLiteral())
        LitB = RB;
      if (A->isLiteral())
        LitA = A;
      if (B->isLiteral())
        LitB = B;
      if (LitA && LitB && LitA != LitB)
        return false; // two distinct literals equated

      // Each side's component representative: the most rigid of the class
      // member recorded so far and the merge argument itself. Keeping the
      // most rigid one is what makes a later merge against a *different*
      // rigid component conflict (a flexible member is compatible with
      // several rigid ones, but those are not compatible with each other).
      TermRef CompA = ClassComp.count(RA) ? ClassComp[RA] : nullptr;
      TermRef CompB = ClassComp.count(RB) ? ClassComp[RB] : nullptr;
      if (A->Kind == TermKind::Comp)
        CompA = moreRigid(CompA, A);
      if (B->Kind == TermKind::Comp)
        CompB = moreRigid(CompB, B);
      if (CompA && CompB && CompA != CompB) {
        if (!compatibleComps(CompA, CompB))
          return false;
        // Projection: equal components have equal config fields.
        assert(CompA->Ops.size() == CompB->Ops.size());
        for (size_t I = 0; I < CompA->Ops.size(); ++I)
          Pending.emplace_back(CompA->Ops[I], CompB->Ops[I]);
      }

      Parent[RA] = RB;
      if (LitA || LitB)
        ClassLit[RB] = LitA ? LitA : LitB;
      if (CompA || CompB)
        ClassComp[RB] = moreRigid(CompA, CompB);
    }
    return true;
  }

  std::unordered_map<TermRef, TermRef> Parent;
  std::unordered_map<TermRef, TermRef> ClassLit;
  std::unordered_map<TermRef, TermRef> ClassComp;
  std::vector<std::pair<TermRef, TermRef>> Pending;
};

void collectSubterms(TermRef T, std::set<TermRef> &Out) {
  if (!Out.insert(T).second)
    return;
  for (TermRef Op : T->Ops)
    collectSubterms(Op, Out);
}

struct RefOrderFact {
  TermRef Lhs;
  TermRef Rhs;
  bool Strict; // Lhs < Rhs vs Lhs <= Rhs
};

} // namespace

SatResult Solver::solveReference(const std::vector<Lit> &Lits) {
  ReferenceClosure UF;
  std::vector<std::pair<TermRef, TermRef>> Diseqs;
  std::vector<RefOrderFact> Orders;
  std::set<TermRef> SubtermSet;

  for (const Lit &L : Lits) {
    TermRef A = L.Atom;
    collectSubterms(A, SubtermSet);
    switch (A->Kind) {
    case TermKind::Eq:
      if (L.Pos) {
        if (!UF.merge(A->Ops[0], A->Ops[1]))
          return SatResult::Unsat;
      } else {
        Diseqs.emplace_back(A->Ops[0], A->Ops[1]);
      }
      break;
    case TermKind::Lt:
      if (L.Pos)
        Orders.push_back({A->Ops[0], A->Ops[1], /*Strict=*/true});
      else
        Orders.push_back({A->Ops[1], A->Ops[0], /*Strict=*/false});
      break;
    case TermKind::Le:
      if (L.Pos)
        Orders.push_back({A->Ops[0], A->Ops[1], /*Strict=*/false});
      else
        Orders.push_back({A->Ops[1], A->Ops[0], /*Strict=*/true});
      break;
    case TermKind::BoolLit:
      if ((A->IntVal != 0) != L.Pos)
        return SatResult::Unsat;
      break;
    default:
      // Any other bool-typed term is a propositional atom: assert its
      // truth value via an equality with the bool literal.
      if (!UF.merge(A, Ctx.boolLit(L.Pos)))
        return SatResult::Unsat;
      break;
    }
  }

  std::vector<TermRef> Subterms(SubtermSet.begin(), SubtermSet.end());
  if (!UF.congruence(Subterms))
    return SatResult::Unsat;

  for (const auto &[A, B] : Diseqs)
    if (UF.sameClass(A, B))
      return SatResult::Unsat;

  // --- Numeric reasoning -------------------------------------------------
  // Known constant per class (from literal members and Add/Sub folding).
  std::unordered_map<TermRef, int64_t> Known;
  auto knownOf = [&](TermRef T) -> std::optional<int64_t> {
    if (T->Kind == TermKind::NumLit)
      return T->IntVal;
    TermRef R = UF.find(T);
    if (TermRef L = UF.literalOf(R); L && L->Kind == TermKind::NumLit)
      return L->IntVal;
    auto It = Known.find(R);
    if (It != Known.end())
      return It->second;
    return std::nullopt;
  };

  // Fold Add/Sub with known operands; a few rounds suffice for the loop-free
  // handler terms this engine sees.
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    for (TermRef T : Subterms) {
      if (T->Kind != TermKind::Add && T->Kind != TermKind::Sub)
        continue;
      auto A = knownOf(T->Ops[0]);
      auto B = knownOf(T->Ops[1]);
      if (!A || !B)
        continue;
      int64_t V = T->Kind == TermKind::Add ? *A + *B : *A - *B;
      TermRef R = UF.find(T);
      auto Existing = knownOf(T);
      if (Existing) {
        if (*Existing != V)
          return SatResult::Unsat;
        continue;
      }
      Known[R] = V;
      Changed = true;
    }
    if (!Changed)
      break;
  }

  // Bounds from ordering facts with one known side; plus direct conflicts.
  std::unordered_map<TermRef, int64_t> Lo, Hi;
  for (const RefOrderFact &O : Orders) {
    auto VL = knownOf(O.Lhs);
    auto VR = knownOf(O.Rhs);
    if (VL && VR) {
      if (O.Strict ? !(*VL < *VR) : !(*VL <= *VR))
        return SatResult::Unsat;
      continue;
    }
    TermRef RL = UF.find(O.Lhs);
    TermRef RR = UF.find(O.Rhs);
    if (RL == RR) {
      if (O.Strict)
        return SatResult::Unsat; // x < x
      continue;
    }
    if (VR) {
      int64_t Bound = O.Strict ? *VR - 1 : *VR;
      auto It = Hi.find(RL);
      Hi[RL] = It == Hi.end() ? Bound : std::min(It->second, Bound);
    }
    if (VL) {
      int64_t Bound = O.Strict ? *VL + 1 : *VL;
      auto It = Lo.find(RR);
      Lo[RR] = It == Lo.end() ? Bound : std::max(It->second, Bound);
    }
  }
  for (const auto &[R, L] : Lo) {
    auto It = Hi.find(R);
    if (It != Hi.end() && L > It->second)
      return SatResult::Unsat;
    if (TermRef LitT = UF.literalOf(R);
        LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal < L)
      return SatResult::Unsat;
  }
  for (const auto &[R, HiV] : Hi)
    if (TermRef LitT = UF.literalOf(R);
        LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal > HiV)
      return SatResult::Unsat;

  // Re-check disequalities now that arithmetic has resolved values: e.g.
  // x = 2 /\ y = 3 /\ x + y != 5.
  for (const auto &[A, B] : Diseqs) {
    auto VA = knownOf(A);
    auto VB = knownOf(B);
    if (VA && VB && *VA == *VB)
      return SatResult::Unsat;
  }

  return SatResult::Maybe;
}

//===----------------------------------------------------------------------===//
// Incremental core
//===----------------------------------------------------------------------===//

/// Persistent congruence closure with a scoped undo trail.
///
/// State is dense-indexed by TermNode::Id (hash-consed ids are dense per
/// context; an overlay continues past its frozen base). The union-find
/// uses union-by-rank and *no path compression* so a union is undone by
/// resetting one parent pointer; per-class facts (literal member,
/// component member), the signature index, the use-lists, and the
/// diseq/order fact lists journal every mutation onto the trail.
class IncrementalCore {
  static constexpr uint32_t Unreg = 0xffffffffu;

  using SigKey = std::vector<uint32_t>;
  struct SigKeyHash {
    size_t operator()(const SigKey &K) const {
      uint64_t H = 1469598103934665603ULL;
      for (uint32_t V : K) {
        H ^= V;
        H *= 1099511628211ULL;
      }
      return static_cast<size_t>(H);
    }
  };

  struct DiseqFact {
    TermRef A, B;
    Lit From;
  };
  struct OrderFact {
    TermRef Lhs, Rhs;
    bool Strict;
    Lit From;
  };

  /// One pending merge with its trail premise.
  struct PendMerge {
    TermRef A, B;
    TrailStep::Kind Why; // MergeInput / MergeCongr / MergeProj
    Lit From{};
    TermRef CA = nullptr, CB = nullptr;
    int Idx = -1;
  };

  struct UndoOp {
    enum K : uint8_t {
      Union,     // X=child, Y=parent, Flag=rank bumped, L/C=old facts of Y
      SigSet,    // Key had value L (nullptr = absent)
      CurSigSet, // term X had sig Key (Flag = had one)
      UseAdd,    // Uses[X] grew by one
      DiseqAdd,
      OrderAdd,
      Register, // last RegList entry becomes unregistered
    } Kind;
    uint32_t X = 0, Y = 0;
    uint8_t Flag = 0;
    TermRef L = nullptr, C = nullptr;
    SigKey Key;
  };

public:
  explicit IncrementalCore(TermContext &Ctx) : Ctx(Ctx) {}

  void setLogging(bool On) { Logging = On; }
  void setActivityOrder(bool On) { ActivityOrder = On; }

  size_t depth() const { return TrailMarks.size(); }
  bool latched() const { return ConflictDepth >= 0; }
  uint64_t sigSweeps() const { return SweepCount; }

  void pushScope() {
    TrailMarks.push_back(Trail.size());
    StepMarks.push_back(LogSteps.size());
  }

  /// Rewinds to the previous scope mark; returns the number of undo
  /// entries reversed.
  uint64_t popScope() {
    assert(!TrailMarks.empty());
    // Sample the signature-table working set for the depth-0 capacity
    // sweep. Within a scope the table only grows (inserts are journaled,
    // resign erases and re-inserts net zero), so its size at pop entry is
    // the scope's peak; the max over an epoch's pops approximates the
    // epoch's high-water mark.
    EpochHighWater = std::max(EpochHighWater, Sigs.size());
    size_t Mark = TrailMarks.back();
    TrailMarks.pop_back();
    uint64_t N = 0;
    while (Trail.size() > Mark) {
      applyUndo(Trail.back());
      Trail.pop_back();
      ++N;
    }
    UndoCount += N;
    LogSteps.resize(StepMarks.back());
    StepMarks.pop_back();
    if (ConflictDepth >= 0 &&
        ConflictDepth > static_cast<int>(TrailMarks.size()))
      ConflictDepth = -1;
    return N;
  }

  void assume(const Lit &L) {
    if (latched())
      return; // inconsistent already; the conflict owns this scope
    TermRef A = L.Atom;
    registerTerm(A);
    switch (A->Kind) {
    case TermKind::Eq:
      if (L.Pos) {
        Pending.push_back({A->Ops[0], A->Ops[1], TrailStep::MergeInput, L});
      } else {
        Diseqs.push_back({A->Ops[0], A->Ops[1], L});
        Trail.push_back(UndoOp{UndoOp::DiseqAdd});
      }
      break;
    case TermKind::Lt:
    case TermKind::Le: {
      NormOrder O = *normOrder(L);
      Orders.push_back({O.Lhs, O.Rhs, O.Strict, L});
      Trail.push_back(UndoOp{UndoOp::OrderAdd});
      break;
    }
    case TermKind::BoolLit:
      if ((A->IntVal != 0) != L.Pos) {
        if (Logging) {
          TrailStep S{};
          S.K = TrailStep::ConfBoolLit;
          S.From = L;
          LogSteps.push_back(S);
        }
        latch();
        return;
      }
      break;
    default: {
      TermRef BL = Ctx.boolLit(L.Pos);
      registerTerm(BL);
      Pending.push_back({A, BL, TrailStep::MergeInput, L});
      break;
    }
    }
    drainPending();
  }

  /// Decides stack + \p Assumptions. \p TrailOut, when non-null, receives
  /// the step sequence on Unsat.
  SatResult check(const std::vector<Lit> &Assumptions, ReasonTrail *TrailOut) {
    bool Opened = false;
    if (!latched()) {
      pushScope();
      Opened = true;
      for (const Lit &L : Assumptions)
        assume(L);
    }
    SatResult R;
    if (latched()) {
      R = SatResult::Unsat;
      if (TrailOut)
        TrailOut->Steps = LogSteps;
    } else {
      R = numericPhase(TrailOut);
    }
    if (Opened)
      popScope();
    return R;
  }

  uint64_t undoCount() const { return UndoCount; }

  /// Depth-0 capacity sweep for the watched-term signature tables.
  ///
  /// Every Sigs/CurSig insertion is journaled, so by the time the
  /// wrapper stack returns to depth 0 the undo trail has removed every
  /// entry: the tables are empty and only their bucket arrays survive
  /// across queries. That capacity is ballast once the query mix
  /// shrinks — a long-lived daemon solver that once walked a deep branch
  /// nest keeps burst-sized tables forever. Called each time the wrapper
  /// stack empties ("epoch"); after ColdEpochLimit consecutive epochs
  /// whose high-water mark stayed under a quarter of the bucket
  /// capacity, the tables are swapped for right-sized replacements
  /// (seeded with the streak's peak so a steady workload never
  /// re-grows from scratch). Purely a memory-footprint release: the
  /// tables are empty either way, so verdicts, trails, and merge order
  /// are untouched.
  void sweepAtDepthZero() {
    size_t Peak = EpochHighWater;
    EpochHighWater = 0;
    size_t Buckets = std::max(Sigs.bucket_count(), CurSig.bucket_count());
    if (!Sigs.empty() || !CurSig.empty() || Buckets <= MinSweepBuckets ||
        Peak * 4 >= Buckets) {
      ColdStreak = 0;
      StreakHighWater = 0;
      return;
    }
    StreakHighWater = std::max(StreakHighWater, Peak);
    if (++ColdStreak < ColdEpochLimit)
      return;
    size_t Keep = StreakHighWater;
    ColdStreak = 0;
    StreakHighWater = 0;
    Sigs = std::unordered_map<SigKey, TermRef, SigKeyHash>(
        std::max<size_t>(Keep * 2, 16));
    CurSig = std::unordered_map<uint32_t, SigKey>(
        std::max<size_t>(Keep * 2, 16));
    ++SweepCount;
  }

private:
  //===--------------------------------------------------------------------===
  // Registration and the watched-term signature index
  //===--------------------------------------------------------------------===

  void ensureId(uint32_t Id) {
    if (Id < Parent.size())
      return;
    size_t N = Id + 1;
    Parent.resize(N, Unreg);
    Rk.resize(N, 0);
    Node.resize(N, nullptr);
    CLit.resize(N, nullptr);
    CComp.resize(N, nullptr);
    Uses.resize(N);
  }

  bool sigBearing(TermRef T) const {
    return !T->Ops.empty() && T->Kind != TermKind::Comp;
  }

  SigKey sigOf(TermRef T) {
    SigKey K;
    K.reserve(T->Ops.size() + 1);
    K.push_back(static_cast<uint32_t>(T->Kind));
    for (TermRef Op : T->Ops)
      K.push_back(findRoot(Op->Id));
    return K;
  }

  void registerTerm(TermRef T) {
    uint32_t Id = T->Id;
    ensureId(Id);
    if (Parent[Id] != Unreg)
      return;
    for (TermRef Op : T->Ops)
      registerTerm(Op);
    Parent[Id] = Id;
    Rk[Id] = 0;
    Node[Id] = T;
    CLit[Id] = nullptr;
    CComp[Id] = nullptr;
    RegList.push_back(T);
    Trail.push_back(UndoOp{UndoOp::Register});
    if (!sigBearing(T))
      return;
    SigKey K = sigOf(T);
    setCurSig(Id, K);
    probeSig(T, K);
    for (TermRef Op : T->Ops) {
      uint32_t R = findRoot(Op->Id);
      Uses[R].push_back(T);
      UndoOp U{UndoOp::UseAdd};
      U.X = R;
      Trail.push_back(U);
    }
  }

  /// Installs T under \p K in the signature table, or queues a congruence
  /// merge with the incumbent.
  void probeSig(TermRef T, const SigKey &K) {
    auto It = Sigs.find(K);
    if (It == Sigs.end()) {
      UndoOp U{UndoOp::SigSet};
      U.Key = K;
      U.L = nullptr;
      Trail.push_back(std::move(U));
      Sigs.emplace(K, T);
    } else if (findRoot(It->second->Id) != findRoot(T->Id)) {
      Pending.push_back({It->second, T, TrailStep::MergeCongr});
    }
  }

  void setCurSig(uint32_t Id, const SigKey &K) {
    UndoOp U{UndoOp::CurSigSet};
    U.X = Id;
    auto It = CurSig.find(Id);
    if (It != CurSig.end()) {
      U.Flag = 1;
      U.Key = It->second;
    }
    Trail.push_back(std::move(U));
    CurSig[Id] = K;
  }

  //===--------------------------------------------------------------------===
  // Union-find + merge propagation
  //===--------------------------------------------------------------------===

  uint32_t findRoot(uint32_t I) const {
    while (Parent[I] != I)
      I = Parent[I];
    return I;
  }

  TermRef literalOfRoot(uint32_t R) const {
    TermRef T = Node[R];
    return T->isLiteral() ? T : CLit[R];
  }

  void latch() {
    ConflictDepth = static_cast<int>(TrailMarks.size());
    Pending.clear();
  }

  void logMerge(const PendMerge &M) {
    if (!Logging)
      return;
    TrailStep S{};
    S.K = M.Why;
    S.From = M.From;
    S.A = M.A;
    S.B = M.B;
    S.CA = M.CA;
    S.CB = M.CB;
    S.Idx = M.Idx;
    LogSteps.push_back(S);
  }

  void logConflict(TrailStep::Kind K, TermRef A, TermRef B) {
    if (!Logging)
      return;
    TrailStep S{};
    S.K = K;
    S.A = A;
    S.B = B;
    LogSteps.push_back(S);
  }

  /// Class activity of a pending merge: the combined watcher count of
  /// its two classes. Every watch landing on a class (a journaled UseAdd)
  /// bumps it, so busy classes score high and collapse early — the
  /// resign cascade then moves each watcher once instead of re-signing
  /// it across several partial merges of quiet classes.
  uint64_t mergeActivity(const PendMerge &M) const {
    return Uses[findRoot(M.A->Id)].size() + Uses[findRoot(M.B->Id)].size();
  }

  void drainPending() {
    while (!Pending.empty()) {
      size_t Best = Pending.size() - 1;
      if (ActivityOrder && Pending.size() > 1) {
        // Highest activity first; ties break on the smaller (min, max)
        // term-serial pair, then queue position. Activity is a pure
        // function of the journaled closure state — never of popped
        // history — so the merge order (and with it trails and
        // certificates) stays a deterministic function of the asserted
        // stack. Congruence closure is confluent, so any order reaches
        // the same closure and the same verdict.
        Best = 0;
        uint64_t BestAct = mergeActivity(Pending[0]);
        auto serialKey = [](const PendMerge &M) {
          return std::make_pair(std::min(M.A->Id, M.B->Id),
                                std::max(M.A->Id, M.B->Id));
        };
        auto BestKey = serialKey(Pending[0]);
        for (size_t I = 1; I < Pending.size(); ++I) {
          uint64_t Act = mergeActivity(Pending[I]);
          if (Act < BestAct)
            continue;
          auto Key = serialKey(Pending[I]);
          if (Act > BestAct || Key < BestKey) {
            Best = I;
            BestAct = Act;
            BestKey = Key;
          }
        }
      }
      PendMerge M = Pending[Best];
      if (Best + 1 != Pending.size())
        Pending[Best] = std::move(Pending.back());
      Pending.pop_back();
      if (!applyMerge(M))
        return; // latched; queue cleared
    }
  }

  bool applyMerge(const PendMerge &M) {
    uint32_t Ra = findRoot(M.A->Id), Rb = findRoot(M.B->Id);
    if (Ra == Rb)
      return true;
    TermRef RootA = Node[Ra], RootB = Node[Rb];

    TermRef LitA = CLit[Ra], LitB = CLit[Rb];
    if (RootA->isLiteral())
      LitA = RootA;
    if (RootB->isLiteral())
      LitB = RootB;
    if (M.A->isLiteral())
      LitA = M.A;
    if (M.B->isLiteral())
      LitB = M.B;

    logMerge(M);
    if (LitA && LitB && LitA != LitB) {
      logConflict(TrailStep::ConfMergeLits, LitA, LitB);
      latch();
      return false;
    }

    TermRef CompA = CComp[Ra], CompB = CComp[Rb];
    if (M.A->Kind == TermKind::Comp)
      CompA = moreRigid(CompA, M.A);
    if (M.B->Kind == TermKind::Comp)
      CompB = moreRigid(CompB, M.B);
    if (CompA && CompB && CompA != CompB) {
      if (!compatibleComps(CompA, CompB)) {
        logConflict(TrailStep::ConfMergeComps, CompA, CompB);
        latch();
        return false;
      }
      // Projection: equal components have equal config fields.
      assert(CompA->Ops.size() == CompB->Ops.size());
      for (size_t I = 0; I < CompA->Ops.size(); ++I)
        Pending.push_back({CompA->Ops[I], CompB->Ops[I], TrailStep::MergeProj,
                           Lit(), CompA, CompB, static_cast<int>(I)});
    }

    // Union by rank; the lower-rank root becomes the child.
    uint32_t C = Ra, P = Rb;
    bool Bump = false;
    if (Rk[Ra] > Rk[Rb]) {
      C = Rb;
      P = Ra;
    } else if (Rk[Ra] == Rk[Rb]) {
      Bump = true;
    }
    UndoOp U{UndoOp::Union};
    U.X = C;
    U.Y = P;
    U.Flag = Bump ? 1 : 0;
    U.L = CLit[P];
    U.C = CComp[P];
    Trail.push_back(std::move(U));
    Parent[C] = P;
    if (Bump)
      ++Rk[P];
    if (LitA || LitB)
      CLit[P] = LitA ? LitA : LitB;
    if (CompA || CompB)
      CComp[P] = moreRigid(CompA, CompB);

    resign(C, P);
    return true;
  }

  /// Re-signs every term watching the just-dethroned root \p C: removes
  /// its old signature entry, installs the new one (queueing congruence
  /// merges on collision), and moves the watch to \p P.
  void resign(uint32_t C, uint32_t P) {
    // Snapshot the length: new watches land on other roots, never on C.
    size_t N = Uses[C].size();
    for (size_t I = 0; I < N; ++I) {
      TermRef T = Uses[C][I];
      SigKey Old = CurSig[T->Id];
      SigKey New = sigOf(T);
      if (New == Old)
        continue; // duplicate watch entry already re-signed
      auto It = Sigs.find(Old);
      if (It != Sigs.end() && It->second == T) {
        UndoOp U{UndoOp::SigSet};
        U.Key = Old;
        U.L = T;
        Trail.push_back(std::move(U));
        Sigs.erase(It);
      }
      setCurSig(T->Id, New);
      probeSig(T, New);
      Uses[P].push_back(T);
      UndoOp U{UndoOp::UseAdd};
      U.X = P;
      Trail.push_back(U);
    }
  }

  void applyUndo(const UndoOp &U) {
    switch (U.Kind) {
    case UndoOp::Union:
      Parent[U.X] = U.X;
      if (U.Flag)
        --Rk[U.Y];
      CLit[U.Y] = U.L;
      CComp[U.Y] = U.C;
      break;
    case UndoOp::SigSet:
      if (U.L)
        Sigs[U.Key] = U.L;
      else
        Sigs.erase(U.Key);
      break;
    case UndoOp::CurSigSet:
      if (U.Flag)
        CurSig[U.X] = U.Key;
      else
        CurSig.erase(U.X);
      break;
    case UndoOp::UseAdd:
      Uses[U.X].pop_back();
      break;
    case UndoOp::DiseqAdd:
      Diseqs.pop_back();
      break;
    case UndoOp::OrderAdd:
      Orders.pop_back();
      break;
    case UndoOp::Register: {
      TermRef T = RegList.back();
      RegList.pop_back();
      Parent[T->Id] = Unreg;
      Node[T->Id] = nullptr;
      break;
    }
    }
  }

  //===--------------------------------------------------------------------===
  // Per-check phases: diseq scan + numeric reasoning
  //===--------------------------------------------------------------------===

  /// Mirrors the reference solver's post-closure phases over the
  /// maintained closure. Read-only on persistent state; value/conflict
  /// steps (for the reason trail) accumulate in a local buffer so Maybe
  /// answers cost no allocation in the log.
  SatResult numericPhase(ReasonTrail *TrailOut) {
    std::vector<TrailStep> Local;
    bool Log = TrailOut != nullptr;
    auto emit = [&](TrailStep S) {
      if (Log)
        Local.push_back(S);
    };
    auto conflict = [&](TrailStep S) {
      if (TrailOut) {
        TrailOut->Steps = LogSteps;
        TrailOut->Steps.insert(TrailOut->Steps.end(), Local.begin(),
                               Local.end());
        TrailOut->Steps.push_back(S);
      }
      return SatResult::Unsat;
    };

    for (const DiseqFact &D : Diseqs)
      if (findRoot(D.A->Id) == findRoot(D.B->Id)) {
        TrailStep S{};
        S.K = TrailStep::ConfDiseq;
        S.From = D.From;
        return conflict(S);
      }

    // Known constant per class (root id -> value), from literal members
    // and Add/Sub folding. Value derivations are logged so the replayer
    // can rebuild the same map.
    std::unordered_map<uint32_t, int64_t> Known;
    std::unordered_set<uint32_t> LitEmitted;
    auto knownOf = [&](TermRef T) -> std::optional<int64_t> {
      if (T->Kind == TermKind::NumLit)
        return T->IntVal;
      uint32_t R = findRoot(T->Id);
      if (TermRef L = literalOfRoot(R); L && L->Kind == TermKind::NumLit) {
        if (Log && LitEmitted.insert(R).second) {
          TrailStep S{};
          S.K = TrailStep::ValueLit;
          S.A = T;
          S.Val = L->IntVal;
          emit(S);
        }
        return L->IntVal;
      }
      auto It = Known.find(R);
      if (It != Known.end())
        return It->second;
      return std::nullopt;
    };

    // Fold Add/Sub with known operands, iterating in registration order
    // (deterministic: registration follows the assert sequence).
    for (int Round = 0; Round < 8; ++Round) {
      bool Changed = false;
      for (TermRef T : RegList) {
        if (T->Kind != TermKind::Add && T->Kind != TermKind::Sub)
          continue;
        auto A = knownOf(T->Ops[0]);
        auto B = knownOf(T->Ops[1]);
        if (!A || !B)
          continue;
        int64_t V = T->Kind == TermKind::Add ? *A + *B : *A - *B;
        uint32_t R = findRoot(T->Id);
        auto Existing = knownOf(T);
        if (Existing) {
          if (*Existing != V) {
            TrailStep S{};
            S.K = TrailStep::ConfArith;
            S.A = T;
            S.Val = V;
            return conflict(S);
          }
          continue;
        }
        Known[R] = V;
        TrailStep S{};
        S.K = TrailStep::ValueFold;
        S.A = T;
        S.Val = V;
        emit(S);
        Changed = true;
      }
      if (!Changed)
        break;
    }

    // Bounds from ordering facts with one known side; plus direct
    // conflicts. Keyed by root id in ordered maps so the first conflict
    // found — and hence the logged trail — is deterministic.
    struct BoundEnt {
      int64_t V;
      Lit From;
      TermRef Side; // the unvalued side whose class carries the bound
    };
    std::map<uint32_t, BoundEnt> Lo, Hi;
    for (const OrderFact &O : Orders) {
      auto VL = knownOf(O.Lhs);
      auto VR = knownOf(O.Rhs);
      if (VL && VR) {
        if (O.Strict ? !(*VL < *VR) : !(*VL <= *VR)) {
          TrailStep S{};
          S.K = TrailStep::ConfOrderGround;
          S.From = O.From;
          return conflict(S);
        }
        continue;
      }
      uint32_t RL = findRoot(O.Lhs->Id);
      uint32_t RR = findRoot(O.Rhs->Id);
      if (RL == RR) {
        if (O.Strict) {
          TrailStep S{};
          S.K = TrailStep::ConfOrderSelf;
          S.From = O.From;
          return conflict(S); // x < x
        }
        continue;
      }
      if (VR) {
        int64_t Bound = O.Strict ? *VR - 1 : *VR;
        auto It = Hi.find(RL);
        if (It == Hi.end() || Bound < It->second.V)
          Hi[RL] = {Bound, O.From, O.Lhs};
      }
      if (VL) {
        int64_t Bound = O.Strict ? *VL + 1 : *VL;
        auto It = Lo.find(RR);
        if (It == Lo.end() || Bound > It->second.V)
          Lo[RR] = {Bound, O.From, O.Rhs};
      }
    }
    for (const auto &[R, LoE] : Lo) {
      auto It = Hi.find(R);
      if (It != Hi.end() && LoE.V > It->second.V) {
        TrailStep S{};
        S.K = TrailStep::ConfBounds;
        S.From = LoE.From;
        S.From2 = It->second.From;
        return conflict(S);
      }
      if (TermRef LitT = literalOfRoot(R);
          LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal < LoE.V) {
        TrailStep S{};
        S.K = TrailStep::ConfBoundLit;
        S.From = LoE.From;
        S.A = LoE.Side;
        return conflict(S);
      }
    }
    for (const auto &[R, HiE] : Hi)
      if (TermRef LitT = literalOfRoot(R);
          LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal > HiE.V) {
        TrailStep S{};
        S.K = TrailStep::ConfBoundLit;
        S.From = HiE.From;
        S.A = HiE.Side;
        return conflict(S);
      }

    // Re-check disequalities now that arithmetic has resolved values.
    for (const DiseqFact &D : Diseqs) {
      auto VA = knownOf(D.A);
      auto VB = knownOf(D.B);
      if (VA && VB && *VA == *VB) {
        TrailStep S{};
        S.K = TrailStep::ConfDiseqVal;
        S.From = D.From;
        return conflict(S);
      }
    }

    return SatResult::Maybe;
  }

  TermContext &Ctx;
  bool Logging = false;
  bool ActivityOrder = true;

  std::vector<uint32_t> Parent; // Unreg = not registered
  std::vector<uint8_t> Rk;
  std::vector<TermRef> Node;
  std::vector<TermRef> CLit;
  std::vector<TermRef> CComp;
  std::vector<std::vector<TermRef>> Uses;
  std::unordered_map<SigKey, TermRef, SigKeyHash> Sigs;
  std::unordered_map<uint32_t, SigKey> CurSig;
  std::vector<DiseqFact> Diseqs;
  std::vector<OrderFact> Orders;
  std::vector<TermRef> RegList;
  std::vector<PendMerge> Pending;

  std::vector<UndoOp> Trail;
  std::vector<size_t> TrailMarks;
  std::vector<TrailStep> LogSteps;
  std::vector<size_t> StepMarks;
  int ConflictDepth = -1;
  uint64_t UndoCount = 0;

  // Depth-0 capacity sweep state (sweepAtDepthZero).
  static constexpr size_t MinSweepBuckets = 1u << 10;
  static constexpr uint32_t ColdEpochLimit = 4;
  size_t EpochHighWater = 0;  ///< peak Sigs size this epoch (pop samples)
  size_t StreakHighWater = 0; ///< peak across the current cold streak
  uint32_t ColdStreak = 0;    ///< consecutive cold depth-0 epochs
  uint64_t SweepCount = 0;
};

//===----------------------------------------------------------------------===//
// Solver wrapper
//===----------------------------------------------------------------------===//

Solver::Solver(TermContext &Ctx)
    : Ctx(Ctx), Core(std::make_unique<IncrementalCore>(Ctx)) {}

Solver::~Solver() = default;

const SolverStats &Solver::stats() const {
  Stats.TrailUndos = Core->undoCount();
  Stats.SigSweeps = Core->sigSweeps();
  return Stats;
}

void Solver::setActivityMergeOrder(bool On) {
  assert(ScopeMarks.empty() && "merge order toggles only at scope depth 0");
  Core->setActivityOrder(On);
}

void Solver::setIncrementalEnabled(bool On) {
  assert(ScopeMarks.empty() && "mode toggles only at scope depth 0");
  Incremental = On;
}

void Solver::setLogEnabled(bool On) {
  assert(ScopeMarks.empty() && "logging toggles only at scope depth 0");
  LogEnabled = On;
  Core->setLogging(On);
}

size_t Solver::scopeDepth() const { return ScopeMarks.size(); }

void Solver::push() {
  ScopeMarks.push_back(StackLits.size());
  ++Stats.Pushes;
  if (Incremental)
    Core->pushScope();
}

void Solver::pop() {
  assert(!ScopeMarks.empty() && "pop without matching push");
  size_t Mark = ScopeMarks.back();
  ScopeMarks.pop_back();
  for (size_t I = StackLits.size(); I-- > Mark;) {
    auto It = StackCount.find(litKey(StackLits[I]));
    if (It != StackCount.end() && --It->second == 0)
      StackCount.erase(It);
  }
  StackLits.resize(Mark);
  if (Incremental) {
    Core->popScope();
    // Each return to depth 0 is a capacity-sweep epoch: the core's
    // signature tables are empty again (every insert rewound), so this
    // is the one safe point to release burst-sized bucket arrays.
    if (ScopeMarks.empty())
      Core->sweepAtDepthZero();
  }
}

void Solver::assume(Lit L) {
  assert(!ScopeMarks.empty() && "assume requires an open scope");
  StackLits.push_back(L);
  ++StackCount[litKey(L)];
  if (Incremental)
    Core->assume(L);
}

void Solver::assume(const std::vector<Lit> &Ls) {
  for (const Lit &L : Ls)
    assume(L);
}

Solver::Suspended::Suspended(Solver &S) : S(S) {
  while (S.scopeDepth() > 0) {
    size_t Mark = S.ScopeMarks.back();
    Saved.emplace_back(S.StackLits.begin() + Mark, S.StackLits.end());
    S.pop();
  }
  std::reverse(Saved.begin(), Saved.end()); // outermost first
}

Solver::Suspended::~Suspended() {
  for (const std::vector<Lit> &Scope : Saved) {
    S.push();
    for (const Lit &L : Scope)
      S.assume(L);
  }
}

/// The single query funnel: budget poll, memo on the exact asserted set,
/// shared-tier gating, then the incremental core or the reference solver.
SatResult Solver::answer(const std::vector<Lit> &Assumptions, bool Scoped) {
  // Budget poll: one step per query. Expired queries answer Maybe (sound)
  // and bypass the memo entirely — see setDeadline.
  if (Budget && Budget->expired())
    return SatResult::Maybe;
  if (Scoped)
    ++Stats.AssumptionChecks;

  // Memo on the exact literal set (order-insensitive). Terms are
  // hash-consed so ids identify atoms.
  std::vector<uint64_t> Key;
  Key.reserve((Scoped ? StackLits.size() : 0) + Assumptions.size());
  bool BasePure = true;
  auto add = [&](const Lit &L) {
    Key.push_back(litKey(L));
    BasePure &= Ctx.inFrozenBase(L.Atom);
  };
  if (Scoped)
    for (const Lit &L : StackLits)
      add(L);
  for (const Lit &L : Assumptions)
    add(L);
  std::sort(Key.begin(), Key.end());
  Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
  uint64_t H = 1469598103934665603ULL;
  for (uint64_t K : Key) {
    H ^= K;
    H *= 1099511628211ULL;
  }
  // The memo hash could in principle collide; include the size in the key
  // and accept the (astronomically small) risk for the prover. The
  // independent certificate checker uses its own Solver instance, so a
  // collision would have to strike twice identically to certify a false
  // proof.
  H = H * 31 + Key.size();
  if (MemoEnabled) {
    auto It = Memo.find(H);
    if (It != Memo.end()) {
      ++Stats.MemoHits;
      if (Scoped)
        ++Stats.AssumptionHits;
      return It->second;
    }
  }
  // Cross-worker tier: eligible only for scope-0 checkLits queries whose
  // atoms all live in the frozen base, so the id-derived key identifies
  // the same query in every worker's overlay. Assumption-scoped results
  // stay private by contract (docs/SOLVER.md). A hit is copied into the
  // private memo and does not count as a solved query.
  bool ShareEligible =
      MemoEnabled && Shared && !Scoped && ScopeMarks.empty() && BasePure;
  if (ShareEligible)
    if (std::optional<SatResult> Hit = Shared->lookup(H)) {
      Memo.emplace(H, *Hit);
      ++Stats.SharedMemoHits;
      return *Hit;
    }

  SatResult R;
  ReasonTrail T;
  bool WantLog = LogEnabled && Incremental;
  if (Incremental && (Scoped || ScopeMarks.empty())) {
    R = Core->check(Assumptions, WantLog ? &T : nullptr);
  } else {
    WantLog = false;
    if (Scoped) {
      std::vector<Lit> Full = StackLits;
      Full.insert(Full.end(), Assumptions.begin(), Assumptions.end());
      R = solveReference(Full);
    } else {
      R = solveReference(Assumptions);
    }
  }
  ++Stats.QueriesSolved;
  if (WantLog && R == SatResult::Unsat) {
    if (Scoped) {
      T.Query = StackLits;
      T.Query.insert(T.Query.end(), Assumptions.begin(), Assumptions.end());
    } else {
      T.Query = Assumptions;
    }
    Stats.ReasonLogBytes += T.Steps.size() * sizeof(TrailStep) +
                            T.Query.size() * sizeof(Lit);
    Trails.push_back(std::move(T));
  }
  if (MemoEnabled) {
    Memo.emplace(H, R);
    if (ShareEligible)
      Shared->publish(H, R);
  }
  return R;
}

SatResult Solver::checkLits(const std::vector<Lit> &Lits) {
  return answer(Lits, /*Scoped=*/false);
}

SatResult Solver::checkAssuming(const std::vector<Lit> &Assumptions) {
  return answer(Assumptions, /*Scoped=*/true);
}

bool Solver::entails(const std::vector<Lit> &Assume, Lit Goal) {
  // Fast path: the goal is literally among the assumptions.
  for (const Lit &L : Assume)
    if (L == Goal)
      return true;
  if (Goal.Atom->Kind == TermKind::BoolLit)
    return (Goal.Atom->IntVal != 0) == Goal.Pos ||
           checkLits(Assume) == SatResult::Unsat;
  std::vector<Lit> WithNeg = Assume;
  WithNeg.push_back(Goal.negated());
  return checkLits(WithNeg) == SatResult::Unsat;
}

bool Solver::entailsAll(const std::vector<Lit> &Assume,
                        const std::vector<Lit> &Goals) {
  for (const Lit &G : Goals)
    if (!entails(Assume, G))
      return false;
  return true;
}

bool Solver::entailsUnder(Lit Goal) {
  // Fast path: the goal is literally among the asserted stack.
  if (StackCount.count(litKey(Goal)))
    return true;
  if (Goal.Atom->Kind == TermKind::BoolLit)
    return (Goal.Atom->IntVal != 0) == Goal.Pos ||
           check() == SatResult::Unsat;
  return checkAssuming({Goal.negated()}) == SatResult::Unsat;
}

bool Solver::entailsAllUnder(const std::vector<Lit> &Goals) {
  for (const Lit &G : Goals)
    if (!entailsUnder(G))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Reason-trail replay (the checker-side trust anchor)
//===----------------------------------------------------------------------===//

namespace {

/// A minimal union-find with class-literal/component tracking, independent
/// of both solver implementations. The replayer never propagates on its
/// own — every congruence/projection consequence must appear as an
/// explicit, premise-checked step in the trail.
class ReplayClosure {
public:
  TermRef find(TermRef T) {
    auto It = Parent.find(T);
    if (It == Parent.end())
      return T;
    TermRef Root = find(It->second);
    It->second = Root;
    return Root;
  }

  TermRef literalOf(TermRef T) {
    TermRef R = find(T);
    if (R->isLiteral())
      return R;
    auto It = CLit.find(R);
    return It == CLit.end() ? nullptr : It->second;
  }

  /// Applies the merge A ~ B. Returns 0 on success, 1 on a distinct-
  /// literal clash, 2 on an incompatible-component clash; the clashing
  /// pair comes back in \p WA / \p WB.
  int merge(TermRef A, TermRef B, TermRef &WA, TermRef &WB) {
    TermRef RA = find(A), RB = find(B);
    if (RA == RB)
      return 0;
    TermRef LitA = CLit.count(RA) ? CLit[RA] : nullptr;
    TermRef LitB = CLit.count(RB) ? CLit[RB] : nullptr;
    if (RA->isLiteral())
      LitA = RA;
    if (RB->isLiteral())
      LitB = RB;
    if (A->isLiteral())
      LitA = A;
    if (B->isLiteral())
      LitB = B;
    if (LitA && LitB && LitA != LitB) {
      WA = LitA;
      WB = LitB;
      return 1;
    }
    TermRef CompA = CComp.count(RA) ? CComp[RA] : nullptr;
    TermRef CompB = CComp.count(RB) ? CComp[RB] : nullptr;
    if (A->Kind == TermKind::Comp)
      CompA = moreRigid(CompA, A);
    if (B->Kind == TermKind::Comp)
      CompB = moreRigid(CompB, B);
    if (CompA && CompB && CompA != CompB && !compatibleComps(CompA, CompB)) {
      WA = CompA;
      WB = CompB;
      return 2;
    }
    Parent[RA] = RB;
    if (LitA || LitB)
      CLit[RB] = LitA ? LitA : LitB;
    if (CompA || CompB)
      CComp[RB] = moreRigid(CompA, CompB);
    return 0;
  }

private:
  std::unordered_map<TermRef, TermRef> Parent;
  std::unordered_map<TermRef, TermRef> CLit;
  std::unordered_map<TermRef, TermRef> CComp;
};

bool samePair(TermRef A, TermRef B, TermRef X, TermRef Y) {
  return (A == X && B == Y) || (A == Y && B == X);
}

} // namespace

bool replayReasonTrail(const TermContext &Ctx, const ReasonTrail &T,
                       std::string &WhyOut) {
  (void)Ctx;
  std::unordered_set<uint64_t> Query;
  for (const Lit &L : T.Query)
    Query.insert(litKey(L));
  auto inQuery = [&](const Lit &L) { return L.Atom && Query.count(litKey(L)); };

  ReplayClosure UF;
  std::unordered_map<TermRef, int64_t> Vals; // class root -> derived value
  auto valueOf = [&](TermRef X) -> std::optional<int64_t> {
    if (!X)
      return std::nullopt;
    if (X->Kind == TermKind::NumLit)
      return X->IntVal;
    auto It = Vals.find(UF.find(X));
    if (It == Vals.end())
      return std::nullopt;
    return It->second;
  };

  int PendingClash = 0;
  TermRef ClashA = nullptr, ClashB = nullptr;
  auto fail = [&](size_t I, const char *W) {
    WhyOut = "trail step " + std::to_string(I) + ": " + W;
    return false;
  };

  for (size_t I = 0; I < T.Steps.size(); ++I) {
    const TrailStep &S = T.Steps[I];
    bool Last = I + 1 == T.Steps.size();

    if (PendingClash) {
      // The preceding merge clashed; the only legal continuation is the
      // matching terminal conflict.
      if (PendingClash == 1 && S.K == TrailStep::ConfMergeLits &&
          samePair(S.A, S.B, ClashA, ClashB))
        return Last ? true : fail(I, "steps after terminal conflict");
      if (PendingClash == 2 && S.K == TrailStep::ConfMergeComps &&
          samePair(S.A, S.B, ClashA, ClashB))
        return Last ? true : fail(I, "steps after terminal conflict");
      return fail(I, "merge clash not confirmed by matching conflict");
    }

    switch (S.K) {
    case TrailStep::MergeInput: {
      if (!inQuery(S.From))
        return fail(I, "premise literal not in query");
      TermRef A = S.From.Atom;
      if (A->Kind == TermKind::Eq && S.From.Pos) {
        if (S.A != A->Ops[0] || S.B != A->Ops[1])
          return fail(I, "merge does not match equality literal");
      } else if (A->Kind != TermKind::Eq && A->Kind != TermKind::Lt &&
                 A->Kind != TermKind::Le && A->Kind != TermKind::BoolLit) {
        // Bool-atom assertion: atom = boolLit(polarity).
        if (S.A != A || !S.B || S.B->Kind != TermKind::BoolLit ||
            (S.B->IntVal != 0) != S.From.Pos)
          return fail(I, "merge does not match atom assertion");
      } else {
        return fail(I, "literal kind cannot justify a merge");
      }
      PendingClash = UF.merge(S.A, S.B, ClashA, ClashB);
      break;
    }
    case TrailStep::MergeCongr: {
      if (!S.A || !S.B || S.A->Ops.empty() || S.A->Kind == TermKind::Comp ||
          S.A->Kind != S.B->Kind || S.A->Ops.size() != S.B->Ops.size())
        return fail(I, "malformed congruence step");
      for (size_t J = 0; J < S.A->Ops.size(); ++J)
        if (UF.find(S.A->Ops[J]) != UF.find(S.B->Ops[J]))
          return fail(I, "congruence operands not in one class");
      PendingClash = UF.merge(S.A, S.B, ClashA, ClashB);
      break;
    }
    case TrailStep::MergeProj: {
      if (!S.CA || !S.CB || S.CA->Kind != TermKind::Comp ||
          S.CB->Kind != TermKind::Comp)
        return fail(I, "malformed projection step");
      if (UF.find(S.CA) != UF.find(S.CB))
        return fail(I, "projected components not in one class");
      if (S.Idx < 0 || static_cast<size_t>(S.Idx) >= S.CA->Ops.size() ||
          S.CA->Ops.size() != S.CB->Ops.size())
        return fail(I, "projection index out of range");
      if (S.A != S.CA->Ops[S.Idx] || S.B != S.CB->Ops[S.Idx])
        return fail(I, "projection does not match component fields");
      PendingClash = UF.merge(S.A, S.B, ClashA, ClashB);
      break;
    }
    case TrailStep::ValueLit: {
      if (!S.A)
        return fail(I, "malformed value step");
      TermRef L = UF.literalOf(S.A);
      if (!L || L->Kind != TermKind::NumLit || L->IntVal != S.Val)
        return fail(I, "class has no numeric literal of claimed value");
      Vals[UF.find(S.A)] = S.Val;
      break;
    }
    case TrailStep::ValueFold: {
      if (!S.A ||
          (S.A->Kind != TermKind::Add && S.A->Kind != TermKind::Sub))
        return fail(I, "malformed fold step");
      auto VA = valueOf(S.A->Ops[0]);
      auto VB = valueOf(S.A->Ops[1]);
      if (!VA || !VB)
        return fail(I, "fold operands not valued");
      int64_t V = S.A->Kind == TermKind::Add ? *VA + *VB : *VA - *VB;
      if (V != S.Val)
        return fail(I, "fold value mismatch");
      TermRef R = UF.find(S.A);
      auto It = Vals.find(R);
      if (It != Vals.end() && It->second != V)
        return fail(I, "fold contradicts earlier value");
      Vals[R] = V;
      break;
    }
    case TrailStep::ConfBoolLit:
      if (!inQuery(S.From) || S.From.Atom->Kind != TermKind::BoolLit ||
          (S.From.Atom->IntVal != 0) == S.From.Pos)
        return fail(I, "bool-literal conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    case TrailStep::ConfDiseq:
      if (!inQuery(S.From) || S.From.Atom->Kind != TermKind::Eq ||
          S.From.Pos ||
          UF.find(S.From.Atom->Ops[0]) != UF.find(S.From.Atom->Ops[1]))
        return fail(I, "disequality conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    case TrailStep::ConfDiseqVal: {
      if (!inQuery(S.From) || S.From.Atom->Kind != TermKind::Eq || S.From.Pos)
        return fail(I, "malformed valued-disequality conflict");
      auto VA = valueOf(S.From.Atom->Ops[0]);
      auto VB = valueOf(S.From.Atom->Ops[1]);
      if (!VA || !VB || *VA != *VB)
        return fail(I, "valued-disequality conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfOrderSelf: {
      if (!inQuery(S.From))
        return fail(I, "premise literal not in query");
      auto O = normOrder(S.From);
      if (!O || !O->Strict || UF.find(O->Lhs) != UF.find(O->Rhs))
        return fail(I, "strict self-order conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfOrderGround: {
      if (!inQuery(S.From))
        return fail(I, "premise literal not in query");
      auto O = normOrder(S.From);
      if (!O)
        return fail(I, "not an order literal");
      auto VL = valueOf(O->Lhs);
      auto VR = valueOf(O->Rhs);
      if (!VL || !VR || (O->Strict ? *VL < *VR : *VL <= *VR))
        return fail(I, "ground order conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfBounds: {
      if (!inQuery(S.From) || !inQuery(S.From2))
        return fail(I, "premise literal not in query");
      auto OL = normOrder(S.From);  // lower fact: Lhs valued
      auto OH = normOrder(S.From2); // upper fact: Rhs valued
      if (!OL || !OH)
        return fail(I, "not order literals");
      auto VL = valueOf(OL->Lhs);
      auto VH = valueOf(OH->Rhs);
      if (!VL || !VH)
        return fail(I, "bound sides not valued");
      if (UF.find(OL->Rhs) != UF.find(OH->Lhs))
        return fail(I, "bounds do not constrain one class");
      int64_t LoB = OL->Strict ? *VL + 1 : *VL;
      int64_t HiB = OH->Strict ? *VH - 1 : *VH;
      if (LoB <= HiB)
        return fail(I, "bounds do not cross");
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfBoundLit: {
      if (!inQuery(S.From) || !S.A)
        return fail(I, "malformed bound-literal conflict");
      auto O = normOrder(S.From);
      if (!O)
        return fail(I, "not an order literal");
      TermRef L = UF.literalOf(S.A);
      if (!L || L->Kind != TermKind::NumLit)
        return fail(I, "bounded class has no numeric literal");
      if (S.A == O->Rhs) {
        auto V = valueOf(O->Lhs);
        if (!V || L->IntVal >= (O->Strict ? *V + 1 : *V))
          return fail(I, "lower bound conflict does not hold");
      } else if (S.A == O->Lhs) {
        auto V = valueOf(O->Rhs);
        if (!V || L->IntVal <= (O->Strict ? *V - 1 : *V))
          return fail(I, "upper bound conflict does not hold");
      } else {
        return fail(I, "bounded term not a side of the order literal");
      }
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfArith: {
      if (!S.A ||
          (S.A->Kind != TermKind::Add && S.A->Kind != TermKind::Sub))
        return fail(I, "malformed arithmetic conflict");
      auto VA = valueOf(S.A->Ops[0]);
      auto VB = valueOf(S.A->Ops[1]);
      auto Existing = valueOf(S.A);
      if (!VA || !VB || !Existing)
        return fail(I, "arithmetic conflict operands not valued");
      int64_t V = S.A->Kind == TermKind::Add ? *VA + *VB : *VA - *VB;
      if (V != S.Val || V == *Existing)
        return fail(I, "arithmetic conflict does not hold");
      return Last ? true : fail(I, "steps after terminal conflict");
    }
    case TrailStep::ConfMergeLits:
    case TrailStep::ConfMergeComps:
      return fail(I, "merge conflict without a clashing merge");
    }
  }
  if (PendingClash)
    return fail(T.Steps.size(), "clashing merge left unconfirmed");
  return fail(T.Steps.size(), "trail ends without a conflict");
}

std::string formatReasonTrail(const TermContext &Ctx, const ReasonTrail &T) {
  auto lit = [&](const Lit &L) {
    if (!L.Atom)
      return std::string("?");
    return (L.Pos ? "" : "!") + Ctx.str(L.Atom);
  };
  std::string Out = "unsat[";
  for (size_t I = 0; I < T.Query.size(); ++I) {
    if (I)
      Out += " & ";
    Out += lit(T.Query[I]);
  }
  Out += "] :: ";
  for (size_t I = 0; I < T.Steps.size(); ++I) {
    const TrailStep &S = T.Steps[I];
    if (I)
      Out += "; ";
    switch (S.K) {
    case TrailStep::MergeInput:
      Out += "m:in(" + Ctx.str(S.A) + "=" + Ctx.str(S.B) + " @" +
             lit(S.From) + ")";
      break;
    case TrailStep::MergeCongr:
      Out += "m:cg(" + Ctx.str(S.A) + "=" + Ctx.str(S.B) + ")";
      break;
    case TrailStep::MergeProj:
      Out += "m:pj(" + Ctx.str(S.A) + "=" + Ctx.str(S.B) + " #" +
             std::to_string(S.Idx) + ")";
      break;
    case TrailStep::ValueLit:
      Out += "v:lit(" + Ctx.str(S.A) + "=" + std::to_string(S.Val) + ")";
      break;
    case TrailStep::ValueFold:
      Out += "v:fold(" + Ctx.str(S.A) + "=" + std::to_string(S.Val) + ")";
      break;
    case TrailStep::ConfMergeLits:
      Out += "conf:lits(" + Ctx.str(S.A) + "," + Ctx.str(S.B) + ")";
      break;
    case TrailStep::ConfMergeComps:
      Out += "conf:comps(" + Ctx.str(S.A) + "," + Ctx.str(S.B) + ")";
      break;
    case TrailStep::ConfBoolLit:
      Out += "conf:bool(@" + lit(S.From) + ")";
      break;
    case TrailStep::ConfDiseq:
      Out += "conf:diseq(@" + lit(S.From) + ")";
      break;
    case TrailStep::ConfDiseqVal:
      Out += "conf:diseqval(@" + lit(S.From) + ")";
      break;
    case TrailStep::ConfOrderSelf:
      Out += "conf:self(@" + lit(S.From) + ")";
      break;
    case TrailStep::ConfOrderGround:
      Out += "conf:ground(@" + lit(S.From) + ")";
      break;
    case TrailStep::ConfBounds:
      Out += "conf:bounds(@" + lit(S.From) + ",@" + lit(S.From2) + ")";
      break;
    case TrailStep::ConfBoundLit:
      Out += "conf:boundlit(@" + lit(S.From) + "," + Ctx.str(S.A) + ")";
      break;
    case TrailStep::ConfArith:
      Out += "conf:arith(" + Ctx.str(S.A) + "=" + std::to_string(S.Val) +
             ")";
      break;
    }
  }
  return Out;
}

} // namespace reflex
