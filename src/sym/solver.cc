//===- sym/solver.cc - Entailment engine ------------------------*- C++ -*-===//

#include "sym/solver.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace reflex {

namespace {

/// Union-find over term refs with per-class facts: the literal member (if
/// any) and a component member (if any).
class Closure {
public:
  explicit Closure(TermContext &Ctx) : Ctx(Ctx) {}

  TermRef find(TermRef T) {
    auto It = Parent.find(T);
    if (It == Parent.end())
      return T;
    TermRef Root = find(It->second);
    It->second = Root;
    return Root;
  }

  /// Requests a merge; returns false on a detected conflict.
  bool merge(TermRef A, TermRef B) {
    Pending.emplace_back(A, B);
    return drain();
  }

  bool sameClass(TermRef A, TermRef B) { return find(A) == find(B); }

  /// The literal (if any) equated with \p T's class. A literal that never
  /// took part in a merge is its own class.
  TermRef literalOf(TermRef T) {
    TermRef R = find(T);
    if (R->isLiteral())
      return R;
    auto It = ClassLit.find(R);
    return It == ClassLit.end() ? nullptr : It->second;
  }

  /// Runs congruence closure over \p Terms until fixpoint. Returns false
  /// on conflict.
  bool congruence(const std::vector<TermRef> &Terms) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Signature: (Kind, rep of each operand) -> first term seen.
      std::map<std::vector<uintptr_t>, TermRef> Sigs;
      for (TermRef T : Terms) {
        if (T->Ops.empty() || T->Kind == TermKind::Comp)
          continue;
        std::vector<uintptr_t> Sig;
        Sig.push_back(static_cast<uintptr_t>(T->Kind));
        for (TermRef Op : T->Ops)
          Sig.push_back(reinterpret_cast<uintptr_t>(find(Op)));
        auto [It, Inserted] = Sigs.emplace(std::move(Sig), T);
        if (!Inserted && !sameClass(It->second, T)) {
          if (!merge(It->second, T))
            return false;
          Changed = true;
        }
      }
    }
    return true;
  }

private:
  /// Processes queued merges, propagating component-field equalities.
  bool drain() {
    while (!Pending.empty()) {
      auto [A, B] = Pending.back();
      Pending.pop_back();
      TermRef RA = find(A), RB = find(B);
      if (RA == RB)
        continue;

      TermRef LitA = ClassLit.count(RA) ? ClassLit[RA] : nullptr;
      TermRef LitB = ClassLit.count(RB) ? ClassLit[RB] : nullptr;
      if (RA->isLiteral())
        LitA = RA;
      if (RB->isLiteral())
        LitB = RB;
      if (A->isLiteral())
        LitA = A;
      if (B->isLiteral())
        LitB = B;
      if (LitA && LitB && LitA != LitB)
        return false; // two distinct literals equated

      // Each side's component representative: the most rigid of the class
      // member recorded so far and the merge argument itself. Keeping the
      // most rigid one is what makes a later merge against a *different*
      // rigid component conflict (a flexible member is compatible with
      // several rigid ones, but those are not compatible with each other).
      auto MoreRigid = [](TermRef X, TermRef Y) {
        if (!X)
          return Y;
        if (!Y)
          return X;
        return rigidity(Y->Ident) > rigidity(X->Ident) ? Y : X;
      };
      TermRef CompA = ClassComp.count(RA) ? ClassComp[RA] : nullptr;
      TermRef CompB = ClassComp.count(RB) ? ClassComp[RB] : nullptr;
      if (A->Kind == TermKind::Comp)
        CompA = MoreRigid(CompA, A);
      if (B->Kind == TermKind::Comp)
        CompB = MoreRigid(CompB, B);
      if (CompA && CompB && CompA != CompB) {
        if (!compatibleComps(CompA, CompB))
          return false;
        // Projection: equal components have equal config fields.
        assert(CompA->Ops.size() == CompB->Ops.size());
        for (size_t I = 0; I < CompA->Ops.size(); ++I)
          Pending.emplace_back(CompA->Ops[I], CompB->Ops[I]);
      }

      Parent[RA] = RB;
      if (LitA || LitB)
        ClassLit[RB] = LitA ? LitA : LitB;
      if (CompA || CompB)
        ClassComp[RB] = MoreRigid(CompA, CompB);
    }
    return true;
  }

  static int rigidity(CompIdent I) {
    switch (I) {
    case CompIdent::InitRigid:
    case CompIdent::NewRigid:
      return 2;
    case CompIdent::FlexPre:
      return 1;
    case CompIdent::FlexAny:
      return 0;
    }
    return 0;
  }

  /// Can two component terms denote the same instance?
  static bool compatibleComps(TermRef A, TermRef B) {
    if (A->Str != B->Str)
      return false; // different component types
    if (A->Ident == CompIdent::FlexAny || B->Ident == CompIdent::FlexAny)
      return true;
    bool ARigid = A->Ident != CompIdent::FlexPre;
    bool BRigid = B->Ident != CompIdent::FlexPre;
    if (ARigid && BRigid)
      return A->Ident == B->Ident && A->IntVal == B->IntVal;
    // One side is FlexPre: compatible unless the other is NewRigid (new
    // components are distinct from all pre-existing ones).
    return A->Ident != CompIdent::NewRigid && B->Ident != CompIdent::NewRigid;
  }

  TermContext &Ctx;
  std::unordered_map<TermRef, TermRef> Parent;
  std::unordered_map<TermRef, TermRef> ClassLit;
  std::unordered_map<TermRef, TermRef> ClassComp;
  std::vector<std::pair<TermRef, TermRef>> Pending;
};

void collectSubterms(TermRef T, std::set<TermRef> &Out) {
  if (!Out.insert(T).second)
    return;
  for (TermRef Op : T->Ops)
    collectSubterms(Op, Out);
}

struct OrderFact {
  TermRef Lhs;
  TermRef Rhs;
  bool Strict; // Lhs < Rhs vs Lhs <= Rhs
};

} // namespace

SatResult Solver::checkLits(const std::vector<Lit> &Lits) {
  // Budget poll: one step per query. Expired queries answer Maybe (sound)
  // and bypass the memo entirely — see setDeadline.
  if (Budget && Budget->expired())
    return SatResult::Maybe;
  // Memo on the exact literal set (order-insensitive). Terms are
  // hash-consed so ids identify atoms.
  std::vector<uint64_t> Key;
  Key.reserve(Lits.size());
  for (const Lit &L : Lits)
    Key.push_back((static_cast<uint64_t>(L.Atom->Id) << 1) |
                  (L.Pos ? 1 : 0));
  std::sort(Key.begin(), Key.end());
  Key.erase(std::unique(Key.begin(), Key.end()), Key.end());
  uint64_t H = 1469598103934665603ULL;
  for (uint64_t K : Key) {
    H ^= K;
    H *= 1099511628211ULL;
  }
  // The memo hash could in principle collide; include the size in the key
  // and accept the (astronomically small) risk for the prover. The
  // independent certificate checker uses its own Solver instance, so a
  // collision would have to strike twice identically to certify a false
  // proof.
  H = H * 31 + Key.size();
  if (MemoEnabled) {
    auto It = Memo.find(H);
    if (It != Memo.end())
      return It->second;
  }
  // Cross-worker tier: eligible only when every atom lives in the frozen
  // base, so the id-derived key identifies the same query in every
  // worker's overlay. A hit is copied into the private memo and does not
  // count as a solved query.
  bool BasePure = false;
  if (MemoEnabled && Shared) {
    BasePure = true;
    for (const Lit &L : Lits)
      BasePure &= Ctx.inFrozenBase(L.Atom);
    if (BasePure)
      if (std::optional<SatResult> Hit = Shared->lookup(H)) {
        Memo.emplace(H, *Hit);
        return *Hit;
      }
  }
  SatResult R = solve(Lits);
  ++QueriesSolved;
  if (MemoEnabled) {
    Memo.emplace(H, R);
    if (BasePure)
      Shared->publish(H, R);
  }
  return R;
}

SatResult Solver::solve(const std::vector<Lit> &Lits) {
  Closure UF(Ctx);
  std::vector<std::pair<TermRef, TermRef>> Diseqs;
  std::vector<OrderFact> Orders;
  std::set<TermRef> SubtermSet;

  for (const Lit &L : Lits) {
    TermRef A = L.Atom;
    collectSubterms(A, SubtermSet);
    switch (A->Kind) {
    case TermKind::Eq:
      if (L.Pos) {
        if (!UF.merge(A->Ops[0], A->Ops[1]))
          return SatResult::Unsat;
      } else {
        Diseqs.emplace_back(A->Ops[0], A->Ops[1]);
      }
      break;
    case TermKind::Lt:
      if (L.Pos)
        Orders.push_back({A->Ops[0], A->Ops[1], /*Strict=*/true});
      else
        Orders.push_back({A->Ops[1], A->Ops[0], /*Strict=*/false});
      break;
    case TermKind::Le:
      if (L.Pos)
        Orders.push_back({A->Ops[0], A->Ops[1], /*Strict=*/false});
      else
        Orders.push_back({A->Ops[1], A->Ops[0], /*Strict=*/true});
      break;
    case TermKind::BoolLit:
      if ((A->IntVal != 0) != L.Pos)
        return SatResult::Unsat;
      break;
    default:
      // Any other bool-typed term is a propositional atom: assert its
      // truth value via an equality with the bool literal.
      if (!UF.merge(A, Ctx.boolLit(L.Pos)))
        return SatResult::Unsat;
      break;
    }
  }

  std::vector<TermRef> Subterms(SubtermSet.begin(), SubtermSet.end());
  if (!UF.congruence(Subterms))
    return SatResult::Unsat;

  for (const auto &[A, B] : Diseqs)
    if (UF.sameClass(A, B))
      return SatResult::Unsat;

  // --- Numeric reasoning -------------------------------------------------
  // Known constant per class (from literal members and Add/Sub folding).
  std::unordered_map<TermRef, int64_t> Known;
  auto knownOf = [&](TermRef T) -> std::optional<int64_t> {
    if (T->Kind == TermKind::NumLit)
      return T->IntVal;
    TermRef R = UF.find(T);
    if (TermRef L = UF.literalOf(R); L && L->Kind == TermKind::NumLit)
      return L->IntVal;
    auto It = Known.find(R);
    if (It != Known.end())
      return It->second;
    return std::nullopt;
  };

  // Fold Add/Sub with known operands; a few rounds suffice for the loop-free
  // handler terms this engine sees.
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    for (TermRef T : Subterms) {
      if (T->Kind != TermKind::Add && T->Kind != TermKind::Sub)
        continue;
      auto A = knownOf(T->Ops[0]);
      auto B = knownOf(T->Ops[1]);
      if (!A || !B)
        continue;
      int64_t V = T->Kind == TermKind::Add ? *A + *B : *A - *B;
      TermRef R = UF.find(T);
      auto Existing = knownOf(T);
      if (Existing) {
        if (*Existing != V)
          return SatResult::Unsat;
        continue;
      }
      Known[R] = V;
      Changed = true;
    }
    if (!Changed)
      break;
  }

  // Bounds from ordering facts with one known side; plus direct conflicts.
  std::unordered_map<TermRef, int64_t> Lo, Hi;
  for (const OrderFact &O : Orders) {
    auto VL = knownOf(O.Lhs);
    auto VR = knownOf(O.Rhs);
    if (VL && VR) {
      if (O.Strict ? !(*VL < *VR) : !(*VL <= *VR))
        return SatResult::Unsat;
      continue;
    }
    TermRef RL = UF.find(O.Lhs);
    TermRef RR = UF.find(O.Rhs);
    if (RL == RR) {
      if (O.Strict)
        return SatResult::Unsat; // x < x
      continue;
    }
    if (VR) {
      int64_t Bound = O.Strict ? *VR - 1 : *VR;
      auto It = Hi.find(RL);
      Hi[RL] = It == Hi.end() ? Bound : std::min(It->second, Bound);
    }
    if (VL) {
      int64_t Bound = O.Strict ? *VL + 1 : *VL;
      auto It = Lo.find(RR);
      Lo[RR] = It == Lo.end() ? Bound : std::max(It->second, Bound);
    }
  }
  for (const auto &[R, L] : Lo) {
    auto It = Hi.find(R);
    if (It != Hi.end() && L > It->second)
      return SatResult::Unsat;
    if (TermRef LitT = UF.literalOf(R);
        LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal < L)
      return SatResult::Unsat;
  }
  for (const auto &[R, HiV] : Hi)
    if (TermRef LitT = UF.literalOf(R);
        LitT && LitT->Kind == TermKind::NumLit && LitT->IntVal > HiV)
      return SatResult::Unsat;

  // Re-check disequalities now that arithmetic has resolved values: e.g.
  // x = 2 /\ y = 3 /\ x + y != 5.
  for (const auto &[A, B] : Diseqs) {
    auto VA = knownOf(A);
    auto VB = knownOf(B);
    if (VA && VB && *VA == *VB)
      return SatResult::Unsat;
  }

  return SatResult::Maybe;
}

bool Solver::entails(const std::vector<Lit> &Assume, Lit Goal) {
  // Fast path: the goal is literally among the assumptions.
  for (const Lit &L : Assume)
    if (L == Goal)
      return true;
  if (Goal.Atom->Kind == TermKind::BoolLit)
    return (Goal.Atom->IntVal != 0) == Goal.Pos ||
           checkLits(Assume) == SatResult::Unsat;
  std::vector<Lit> WithNeg = Assume;
  WithNeg.push_back(Goal.negated());
  return checkLits(WithNeg) == SatResult::Unsat;
}

bool Solver::entailsAll(const std::vector<Lit> &Assume,
                        const std::vector<Lit> &Goals) {
  for (const Lit &G : Goals)
    if (!entails(Assume, G))
      return false;
  return true;
}

} // namespace reflex
