//===- sym/symeval.cc - Symbolic expression evaluation ----------*- C++ -*-===//

#include "sym/symeval.h"

#include <cassert>

namespace reflex {

TermRef symEvalExpr(TermContext &Ctx, const Expr &E, const SymEnv &Env) {
  switch (E.kind()) {
  case Expr::Lit:
    return Ctx.lit(cast<LitExpr>(E).value());
  case Expr::VarRef: {
    auto It = Env.Vars.find(cast<VarRefExpr>(E).name());
    assert(It != Env.Vars.end() && "unvalidated program: unknown variable");
    return It->second;
  }
  case Expr::SenderRef:
    assert(Env.Sender && "sender outside a handler");
    return Env.Sender;
  case Expr::ConfigRef: {
    const auto &CR = cast<ConfigRefExpr>(E);
    TermRef Base = symEvalExpr(Ctx, CR.base(), Env);
    assert(Base->Kind == TermKind::Comp && "config read on non-component");
    assert(CR.fieldIndex() >= 0 &&
           static_cast<size_t>(CR.fieldIndex()) < Base->Ops.size() &&
           "unresolved config field");
    return Base->Ops[CR.fieldIndex()];
  }
  case Expr::Unary:
    return Ctx.notT(symEvalExpr(Ctx, cast<UnaryExpr>(E).operand(), Env));
  case Expr::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    TermRef L = symEvalExpr(Ctx, B.lhs(), Env);
    TermRef R = symEvalExpr(Ctx, B.rhs(), Env);
    switch (B.op()) {
    case BinOp::Eq:
      return Ctx.eq(L, R);
    case BinOp::Ne:
      return Ctx.notT(Ctx.eq(L, R));
    case BinOp::And:
      return Ctx.andT(L, R);
    case BinOp::Or:
      return Ctx.orT(L, R);
    case BinOp::Add:
      return Ctx.add(L, R);
    case BinOp::Sub:
      return Ctx.sub(L, R);
    case BinOp::Lt:
      return Ctx.lt(L, R);
    case BinOp::Le:
      return Ctx.le(L, R);
    case BinOp::Gt:
      return Ctx.lt(R, L);
    case BinOp::Ge:
      return Ctx.le(R, L);
    }
    return nullptr;
  }
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

} // namespace reflex
