//===- sym/term.h - Hash-consed symbolic terms ------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic term language underlying the prover: values of Reflex
/// expressions over symbolic constants. Terms are immutable and
/// hash-consed in a TermContext, so structural equality is pointer
/// equality and every term has a dense id (used by the solver's
/// union-find).
///
/// Component values are first-class terms carrying their (statically
/// known) component type, their configuration field terms, and an identity
/// class used for distinctness reasoning:
///
///  * InitRigid(i)  — the i-th component spawned by init. Distinct from
///                    every other InitRigid and every NewRigid.
///  * NewRigid(i)   — a component spawned during the handler execution
///                    under analysis. Fresh: distinct from everything that
///                    existed before it.
///  * FlexPre(i)    — an unknown pre-existing component (the handler's
///                    sender, or a lookup result). May equal an InitRigid
///                    or another FlexPre of the same type.
///
/// This small identity algebra is what the paper gets from Coq's
/// constructors; it is all the distinctness the benchmark properties need.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SYM_TERM_H
#define REFLEX_SYM_TERM_H

#include "support/interner.h"
#include "trace/value.h"

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace reflex {

enum class TermKind : uint8_t {
  NumLit,
  StrLit,
  BoolLit,
  SymVar, ///< a named symbolic constant
  Comp,   ///< a component value
  Eq,     ///< equality (any base type except bool-compound)
  Lt,     ///< num <
  Le,     ///< num <=
  And,
  Or,
  Not,
  Add,
  Sub,
};

/// Role of a symbolic constant. Determines how the invariant engine
/// generalizes and substitutes it.
enum class SymTag : uint8_t {
  State,  ///< canonical pre-state value of a state variable (one per var)
  PatVar, ///< universally quantified property/pattern variable
  Fresh,  ///< fresh unknown: message parameter, call result, config field
          ///< of an unknown component, NI parameter, ...
};

/// Identity class of a Comp term (see file comment). FlexAny is used for
/// lookup results when a spawn of the same component type happened earlier
/// in the same handler path — such a lookup may find the just-spawned
/// component, so it is compatible with everything of its type.
enum class CompIdent : uint8_t { InitRigid, NewRigid, FlexPre, FlexAny };

class TermContext;

struct TermNode {
  TermKind Kind;
  BaseType Ty;
  SymTag Tag = SymTag::Fresh;       // SymVar only
  CompIdent Ident = CompIdent::FlexPre; // Comp only
  int64_t IntVal = 0; // NumLit value; BoolLit 0/1; SymVar serial;
                      // Comp identity serial
  Symbol Str;         // StrLit value; SymVar name; Comp type name
  std::vector<const TermNode *> Ops; // Comp config fields; operator operands
  uint32_t Id = 0;    // dense id within the owning TermContext

  bool isLiteral() const {
    return Kind == TermKind::NumLit || Kind == TermKind::StrLit ||
           Kind == TermKind::BoolLit;
  }
  bool isBoolAtom() const {
    return Kind != TermKind::And && Kind != TermKind::Or &&
           Kind != TermKind::Not;
  }
};

using TermRef = const TermNode *;

/// Owns and hash-conses terms. All terms compared or combined must come
/// from the same context. Builders perform local simplification (constant
/// folding, trivial equalities) unless simplification is disabled — the
/// toggle exists so the ablation bench can measure the paper's
/// "domain-specific reduction strategies" optimization (§6.4).
///
/// A context can be frozen (freeze()): after that, any attempt to allocate
/// a new term in it aborts the process. To keep building terms over a
/// frozen context, layer an overlay context on top of it with the overlay
/// constructor — lookups (hash-consing, named symbols, interned strings)
/// fall through to the frozen base, and new terms are allocated privately
/// in the overlay with ids continuing past the base's range. This is how
/// the verification service shares one immutable abstraction (base) across
/// worker threads, each with its own overlay arena: base reads are
/// lock-free because freeze() makes mutation a process abort, not a race.
class TermContext {
public:
  TermContext() = default;
  TermContext(const TermContext &) = delete;
  TermContext &operator=(const TermContext &) = delete;

  /// Overlay constructor: layer this context on top of \p Base, which must
  /// be frozen already and must outlive the overlay. Terms owned by the
  /// base keep their ids and may be freely mixed with overlay terms;
  /// simplification mode and serial counters continue from the base.
  explicit TermContext(const TermContext *Base);

  /// Enables/disables builder-level simplification.
  void setSimplify(bool On) { Simplify = On; }
  bool simplifyEnabled() const { return Simplify; }

  /// Makes the context immutable: any later term allocation (without an
  /// overlay) aborts. Irreversible.
  void freeze() { Frozen = true; }
  bool frozen() const { return Frozen; }

  /// Number of terms owned by the frozen base chain (0 for a standalone
  /// context). Terms with Id < baseTermCount() are shared and immutable.
  uint32_t baseTermCount() const { return BaseCount; }
  /// True iff \p T lives in the frozen base this overlay was layered on.
  bool inFrozenBase(TermRef T) const { return T->Id < BaseCount; }

  /// Number of distinct terms allocated (memory proxy for the ablation
  /// bench). For an overlay this includes the base's terms.
  size_t termCount() const { return BaseCount + Nodes.size(); }

  // Literals.
  TermRef numLit(int64_t V);
  TermRef strLit(std::string_view S);
  TermRef boolLit(bool B);
  TermRef trueTerm() { return boolLit(true); }
  TermRef falseTerm() { return boolLit(false); }
  /// The term for a concrete value (num/str/bool only).
  TermRef lit(const Value &V);

  // Symbolic constants.
  /// The canonical pre-state symbol of state variable \p Name. Idempotent.
  TermRef stateSym(std::string_view Name, BaseType Ty);
  /// The canonical symbol of pattern variable \p Name. Idempotent.
  TermRef patSym(std::string_view Name, BaseType Ty);
  /// A fresh symbolic constant; every call returns a distinct term.
  TermRef freshSym(std::string_view Prefix, BaseType Ty);
  /// The hypothetical symbol of \p Name: Fresh-tagged like freshSym's
  /// results but with a fixed serial, so the same name always yields the
  /// same (hash-consed) term. For scoped what-if queries (NI's
  /// hypothetical-component check) whose symbols must render identically
  /// across re-derivations regardless of session allocation history; the
  /// symbols must never escape their solver scope. Cannot alias freshSym
  /// terms: their serials are the non-negative counter values.
  TermRef hypSym(std::string_view Name, BaseType Ty);

  // Components.
  /// A component term; \p Config must have one term per config field of
  /// \p TypeName. Identity serials must be unique per (Ident) class within
  /// one proof obligation; use freshCompSerial().
  TermRef comp(std::string_view TypeName, CompIdent Ident, int64_t Serial,
               std::vector<TermRef> Config);
  int64_t freshCompSerial() { return CompSerial++; }

  // Operators.
  TermRef eq(TermRef A, TermRef B);
  TermRef lt(TermRef A, TermRef B);
  TermRef le(TermRef A, TermRef B);
  TermRef andT(TermRef A, TermRef B);
  TermRef orT(TermRef A, TermRef B);
  TermRef notT(TermRef A);
  TermRef add(TermRef A, TermRef B);
  TermRef sub(TermRef A, TermRef B);

  /// Capped substitution: replaces occurrences of keys of \p Map in \p T
  /// (by pointer identity) and rebuilds. Used by the invariant engine to
  /// push a guard over a handler's updates.
  TermRef substitute(TermRef T,
                     const std::unordered_map<TermRef, TermRef> &Map);

  /// If \p T is a ground literal, returns its value.
  std::optional<Value> literalValue(TermRef T) const;

  /// Human-readable rendering (for certificates and diagnostics).
  std::string str(TermRef T) const;

  const std::string &symbolStr(Symbol S) const { return Strings.str(S); }

private:
  TermRef make(TermNode N);
  /// Hash-cons lookup through the base chain (no allocation).
  TermRef findExisting(uint64_t H, const TermNode &N) const;
  /// Named-symbol lookup through the base chain.
  TermRef findNamedSym(const std::string &Key) const;

  bool Simplify = true;
  bool Frozen = false;
  const TermContext *Base = nullptr; // frozen base of an overlay, or null
  uint32_t BaseCount = 0;            // Base->termCount() at layering time
  StringInterner Strings;
  std::deque<TermNode> Nodes;
  std::unordered_map<uint64_t, std::vector<TermRef>> HashCons;
  std::unordered_map<std::string, TermRef> NamedSyms; // state/pat syms
  uint64_t FreshSerial = 0;
  int64_t CompSerial = 0;
};

/// A solver literal: an atomic bool term with a polarity.
struct Lit {
  TermRef Atom = nullptr;
  bool Pos = true;

  Lit() = default;
  Lit(TermRef Atom, bool Pos) : Atom(Atom), Pos(Pos) {}

  Lit negated() const { return Lit(Atom, !Pos); }
  bool operator==(const Lit &O) const {
    return Atom == O.Atom && Pos == O.Pos;
  }
  bool operator<(const Lit &O) const {
    if (Atom != O.Atom)
      return Atom->Id < O.Atom->Id;
    return Pos < O.Pos;
  }
};

/// Splits a bool term into disjunctive normal form: a list of conjunctions
/// of literals, such that the term is equivalent to the disjunction of the
/// conjunctions. \p Polarity false splits the negation. The result is
/// capped at \p MaxDisjuncts (returns std::nullopt when exceeded, which
/// makes the prover report Unknown rather than explode).
std::optional<std::vector<std::vector<Lit>>>
splitCondDNF(TermRef Cond, bool Polarity, size_t MaxDisjuncts = 64);

} // namespace reflex

#endif // REFLEX_SYM_TERM_H
