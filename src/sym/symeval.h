//===- sym/symeval.h - Symbolic expression evaluation -----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates Reflex expressions to symbolic terms under an environment
/// mapping names (state variables, parameters, locals, component globals)
/// to terms. The program must be validated; evaluation is total on
/// validated programs — the "never go wrong" property the paper gets from
/// dependent types.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SYM_SYMEVAL_H
#define REFLEX_SYM_SYMEVAL_H

#include "ast/expr.h"
#include "sym/term.h"

#include <map>
#include <string>

namespace reflex {

/// Environment for symbolic evaluation.
struct SymEnv {
  std::map<std::string, TermRef> Vars;
  TermRef Sender = nullptr; // comp term; null outside handlers
};

/// Evaluates \p E under \p Env. Asserts on unvalidated programs.
TermRef symEvalExpr(TermContext &Ctx, const Expr &E, const SymEnv &Env);

} // namespace reflex

#endif // REFLEX_SYM_SYMEVAL_H
