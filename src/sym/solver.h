//===- sym/solver.h - Incremental entailment engine -------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint engine behind the prover — the C++ analog of the
/// rewriting/contradiction-finding that the paper's Ltac tactics perform on
/// branch conditions ("adding branch conditions to the context is
/// essential here, as it prunes unfeasible paths", §5.1). It decides
/// conjunctions of literals over the term language:
///
///  * congruence closure over equalities (with component-field projection:
///    merging two component terms merges their config fields),
///  * distinctness from literals and from the component identity algebra,
///  * light integer bound propagation for `<`/`<=` and constant folding of
///    `+`/`-`.
///
/// The engine is *sound for Unsat*: a query returns Unsat only when the
/// literal set is genuinely contradictory; Maybe means "could not refute".
/// Entailment (entails) asks whether assumptions plus the negated goal are
/// Unsat, so a Maybe never lets a false obligation through — it produces
/// an Unknown verdict in the prover, mirroring the paper's explicitly
/// incomplete automation (§5.3).
///
/// Since PR 8 the solver is *incremental in the CaDiCaL
/// solve-under-assumptions style* (docs/SOLVER.md): callers push scopes,
/// assert the shared prefix of an obligation family once, and answer each
/// goal with a scoped check. The congruence closure lives across queries
/// behind an undo trail (union-by-rank, no path compression, every
/// mutation journaled and reversed on pop), merges propagate through a
/// pending queue with watched-term signature indexing instead of a
/// fixpoint re-scan, and every Unsat can record a reason trail — the
/// merge/value steps that closed the contradiction — which the checker
/// replays independently (replayReasonTrail) and exports into the
/// certificate's solver log. A from-scratch reference solver
/// (setIncrementalEnabled(false)) is retained for differential testing.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SYM_SOLVER_H
#define REFLEX_SYM_SOLVER_H

#include "support/deadline.h"
#include "sym/term.h"

#include <array>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace reflex {

enum class SatResult : uint8_t { Unsat, Maybe };

//===----------------------------------------------------------------------===//
// Reason trails
//===----------------------------------------------------------------------===//

/// One step of a solver reason trail. A trail justifies an Unsat answer as
/// a sequence of class merges and value derivations ending in a conflict,
/// in the spirit of DRAT/LRAT solver proof logging: the solver that found
/// the contradiction is untrusted, and a small independent replayer
/// (replayReasonTrail) re-checks every step against the query's literal
/// set before the certificate is accepted.
struct TrailStep {
  enum Kind : uint8_t {
    // Class merges (A ~ B), each with its premise.
    MergeInput, ///< justified by input literal From (Eq, or bool atom)
    MergeCongr, ///< A, B identical operators over pairwise-equal classes
    MergeProj,  ///< A = CA->Ops[Idx], B = CB->Ops[Idx] for merged comps
    // Value derivations for the class of A.
    ValueLit,   ///< A's class contains the numeric literal Val
    ValueFold,  ///< A is Add/Sub over classes valued per earlier steps
    // Terminal conflicts.
    ConfMergeLits,   ///< preceding merge joined distinct literals A, B
    ConfMergeComps,  ///< preceding merge joined incompatible comps A, B
    ConfBoolLit,     ///< From asserts a bool literal with wrong polarity
    ConfDiseq,       ///< From is a diseq whose sides share a class
    ConfDiseqVal,    ///< From is a diseq whose sides have equal values
    ConfOrderSelf,   ///< From is a strict order with both sides one class
    ConfOrderGround, ///< From is an order violated by derived values
    ConfBounds,      ///< From (lower) and From2 (upper) cross on a class
    ConfBoundLit,    ///< From bounds a class whose literal Val violates it
    ConfArith,       ///< A folds to Val but its class is valued otherwise
  };

  Kind K;
  Lit From{};           ///< input-literal premise (Atom null when unused)
  Lit From2{};          ///< second premise (ConfBounds)
  TermRef A = nullptr;  ///< merged lhs / valued term / conflict witness
  TermRef B = nullptr;  ///< merged rhs / second conflict witness
  TermRef CA = nullptr; ///< projection: the two comp terms
  TermRef CB = nullptr;
  int Idx = -1;         ///< projection field index
  int64_t Val = 0;      ///< derived value
};

/// A recorded Unsat: the exact literal set of the query plus the trail
/// that refutes it.
struct ReasonTrail {
  std::vector<Lit> Query;
  std::vector<TrailStep> Steps;
};

/// Independently re-validates \p T: replays every merge and value step
/// against T.Query through a minimal union-find (separate from the solver
/// core) and confirms the terminal conflict. Returns false with \p WhyOut
/// set when any premise or the conflict fails to check. This is the
/// checker-side trust anchor for incremental Unsat answers.
bool replayReasonTrail(const TermContext &Ctx, const ReasonTrail &T,
                       std::string &WhyOut);

/// Renders \p T as one deterministic, human-auditable line for the
/// certificate solver log.
std::string formatReasonTrail(const TermContext &Ctx, const ReasonTrail &T);

//===----------------------------------------------------------------------===//
// Shared memo tier
//===----------------------------------------------------------------------===//

/// A cross-worker tier for the solver memo, sharded to keep lock traffic
/// off the hot path. Workers verifying properties of the same frozen
/// abstraction publish solved queries here and consult it after a private
/// memo miss. Only queries whose atoms all live in the frozen base context
/// are eligible (their ids — and hence the memo key — mean the same thing
/// in every worker's overlay); overlay-local queries stay private.
/// Assumption-scoped results are additionally excluded: only scope-0
/// checkLits results are published or looked up here (the scoped fast
/// path's latched conflicts and stack bookkeeping are worker-local).
///
/// Sharing is semantically transparent: a hit returns exactly the result
/// solve() would have computed, because the solver is deterministic over a
/// fixed term context and expired-budget queries answer Maybe *before*
/// reaching the memo (so tainted results are never published).
class SharedSolverMemo {
public:
  std::optional<SatResult> lookup(uint64_t Key) const {
    const Bucket &B = shard(Key);
    std::shared_lock<std::shared_mutex> Lock(B.Mu);
    auto It = B.Map.find(Key);
    if (It == B.Map.end())
      return std::nullopt;
    return It->second;
  }

  void publish(uint64_t Key, SatResult R) {
    Bucket &B = shard(Key);
    std::unique_lock<std::shared_mutex> Lock(B.Mu);
    B.Map.emplace(Key, R);
  }

  /// Total published entries (test hook for the scope-0-only publication
  /// contract).
  size_t size() const {
    size_t N = 0;
    for (const Bucket &B : Shards) {
      std::shared_lock<std::shared_mutex> Lock(B.Mu);
      N += B.Map.size();
    }
    return N;
  }

private:
  struct Bucket {
    mutable std::shared_mutex Mu;
    std::unordered_map<uint64_t, SatResult> Map;
  };
  static constexpr size_t NumShards = 16;
  Bucket &shard(uint64_t Key) { return Shards[(Key >> 4) % NumShards]; }
  const Bucket &shard(uint64_t Key) const {
    return Shards[(Key >> 4) % NumShards];
  }
  std::array<Bucket, NumShards> Shards;
};

//===----------------------------------------------------------------------===//
// Solver
//===----------------------------------------------------------------------===//

/// Work counters. QueriesSolved is the classic proxy (memo-miss solves);
/// the rest expose where the incremental core actually spends and saves
/// work, surfaced through the verification report, scheduler stats, the
/// daemon `stats` verb, and `--json`.
struct SolverStats {
  uint64_t QueriesSolved = 0;    ///< memo-miss solves (scratch or scoped)
  uint64_t MemoHits = 0;         ///< private memo hits
  uint64_t SharedMemoHits = 0;   ///< cross-worker memo hits
  uint64_t AssumptionChecks = 0; ///< scoped checks (stack + assumptions)
  uint64_t AssumptionHits = 0;   ///< scoped checks answered by the memo
  uint64_t Pushes = 0;           ///< scopes opened
  uint64_t TrailUndos = 0;       ///< undo-trail entries reversed by pop()
  uint64_t ReasonLogBytes = 0;   ///< bytes of recorded reason trails
  uint64_t SigSweeps = 0;        ///< depth-0 signature-table capacity sweeps
};

class IncrementalCore;

/// Decision procedures plus a memo table. One Solver instance is shared
/// across a verification run; the memo is keyed by the sorted ids of the
/// full asserted literal set (stack scopes + assumptions), which is valid
/// because terms are hash-consed in a single context — a scoped check and
/// a from-scratch checkLits over the same set share one memo entry, so
/// incrementality is semantically invisible.
class Solver {
public:
  explicit Solver(TermContext &Ctx);
  ~Solver();

  /// Enables/disables the query memo. The memo is part of the "saving
  /// subproofs at key cut points" optimization (§6.4) and is switched off
  /// together with the invariant-proof cache in the ablation bench.
  void setMemoEnabled(bool On) { MemoEnabled = On; }

  /// Attaches (or detaches, with nullptr) a cross-worker memo tier. Only
  /// meaningful when Ctx is an overlay over a frozen base shared with the
  /// other workers; scope-0 queries over base-only atoms are looked
  /// up/published there. No effect while the private memo is disabled.
  void setSharedMemo(SharedSolverMemo *M) { Shared = M; }

  /// Installs (or clears, with nullptr) a cooperative budget token.
  /// Every query polls it exactly once; once expired, queries answer
  /// Maybe — "could not refute" — without solving and without touching
  /// the memo (an expiry-Maybe must not poison results for later
  /// properties that share this solver). Maybe is always sound here, so
  /// an expired solver can only make the prover fail, never certify a
  /// false proof.
  void setDeadline(Deadline *D) { Budget = D; }

  /// Selects the persistent incremental core (default) or the
  /// from-scratch reference solver for every query. The reference path
  /// re-solves the full literal set per check and records no reason
  /// trails; it exists so differential tests and the bench can pin the
  /// incremental core against the original algorithm.
  void setIncrementalEnabled(bool On);

  /// Enables reason-trail recording: every Unsat solved by the
  /// incremental core records the merge/value steps that closed the
  /// contradiction, retrievable via reasonTrails(). Off by default (the
  /// checker turns it on; the bench measures its overhead).
  void setLogEnabled(bool On);

  /// Selects activity-driven pending-merge ordering (default) or the
  /// historical LIFO drain. Activity is the watcher count of a merge's
  /// two classes — a pure function of the journaled closure state, so
  /// either ordering yields deterministic, stack-determined merge
  /// sequences and identical verdicts (congruence closure is confluent).
  /// The LIFO path is kept for the bench's A/B arm and differential
  /// tests.
  void setActivityMergeOrder(bool On);

  //===--------------------------------------------------------------------===
  // Scoped assertion stack
  //===--------------------------------------------------------------------===

  /// Opens an assertion scope. Every assume() until the matching pop()
  /// belongs to it; pop() rewinds the congruence closure through the undo
  /// trail to the state at push().
  void push();
  void pop();
  size_t scopeDepth() const;

  /// Asserts \p L in the current scope. Contradictions latch: once the
  /// stack is inconsistent every check answers Unsat until the offending
  /// scope pops. Must not be called at scope depth 0 (the base context of
  /// a verification run stays empty so checkLits keeps its meaning).
  void assume(Lit L);
  void assume(const std::vector<Lit> &Ls);

  /// Is the asserted stack plus \p Assumptions contradictory? One budget
  /// poll, memoized on the full literal set.
  SatResult checkAssuming(const std::vector<Lit> &Assumptions);

  /// Is the asserted stack itself contradictory?
  SatResult check() { return checkAssuming({}); }

  /// Does the asserted stack entail \p Goal? (Sound: true only when
  /// stack ∧ ¬Goal is provably Unsat.)
  bool entailsUnder(Lit Goal);

  /// Entailment of a conjunction of literals under the asserted stack.
  bool entailsAllUnder(const std::vector<Lit> &Goals);

  /// Satisfiability shorthand: true unless stack + \p Assumptions is
  /// provably Unsat.
  bool maybeSatUnder(const std::vector<Lit> &Assumptions) {
    return checkAssuming(Assumptions) == SatResult::Maybe;
  }

  /// RAII scope: push() on construction (optionally asserting a literal
  /// set) and pop() on destruction, so obligation loops with early
  /// returns stay balanced.
  class Scope {
  public:
    explicit Scope(Solver &S) : S(S) { S.push(); }
    Scope(Solver &S, const std::vector<Lit> &Ls) : S(S) {
      S.push();
      S.assume(Ls);
    }
    ~Scope() { S.pop(); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Solver &S;
  };

  /// Temporarily rewinds the assertion stack to depth 0 and restores it
  /// on destruction — the escape hatch for re-entrant proving (nested
  /// invariant synthesis) that must run in a clean base context.
  class Suspended {
  public:
    explicit Suspended(Solver &S);
    ~Suspended();
    Suspended(const Suspended &) = delete;
    Suspended &operator=(const Suspended &) = delete;

  private:
    Solver &S;
    std::vector<std::vector<Lit>> Saved;
  };

  //===--------------------------------------------------------------------===
  // Scope-0 queries (the original API)
  //===--------------------------------------------------------------------===

  /// Is the conjunction of \p Lits contradictory? Ignores the assertion
  /// stack (callers use it at depth 0; at depth > 0 it falls back to the
  /// reference solver so the answer still covers exactly \p Lits).
  SatResult checkLits(const std::vector<Lit> &Lits);

  /// Does the conjunction of \p Assume entail \p Goal? (Sound: true only
  /// when Assume ∧ ¬Goal is provably Unsat.)
  bool entails(const std::vector<Lit> &Assume, Lit Goal);

  /// Entailment of a conjunction of literals.
  bool entailsAll(const std::vector<Lit> &Assume,
                  const std::vector<Lit> &Goals);

  /// Satisfiability shorthand: true unless provably Unsat.
  bool maybeSat(const std::vector<Lit> &Lits) {
    return checkLits(Lits) == SatResult::Maybe;
  }

  //===--------------------------------------------------------------------===
  // Introspection
  //===--------------------------------------------------------------------===

  /// Number of evaluations that missed the memo (a work proxy for the
  /// ablation bench).
  uint64_t queriesSolved() const { return Stats.QueriesSolved; }

  const SolverStats &stats() const;

  /// Reason trails recorded while setLogEnabled(true), in solve order
  /// (one per distinct Unsat query).
  const std::vector<ReasonTrail> &reasonTrails() const { return Trails; }

private:
  friend class IncrementalCore;

  SatResult solveReference(const std::vector<Lit> &Lits);
  SatResult answer(const std::vector<Lit> &Assumptions, bool Scoped);
  uint64_t keyFor(const std::vector<Lit> &Assumptions, bool &BasePure,
                  std::vector<Lit> *FullOut) const;

  TermContext &Ctx;
  std::unique_ptr<IncrementalCore> Core;
  std::unordered_map<uint64_t, SatResult> Memo;
  bool MemoEnabled = true;
  bool Incremental = true;
  bool LogEnabled = false;
  SharedSolverMemo *Shared = nullptr;
  Deadline *Budget = nullptr;
  mutable SolverStats Stats;
  std::vector<ReasonTrail> Trails;

  // Wrapper-side mirror of the assertion stack: the flat asserted-literal
  // list, scope boundaries into it, and a multiset of asserted atoms for
  // the entails fast path and memo-key building. Kept in both modes so
  // the reference path and Suspended see the same stack.
  std::vector<Lit> StackLits;
  std::vector<size_t> ScopeMarks;
  std::unordered_map<uint64_t, uint32_t> StackCount;
};

} // namespace reflex

#endif // REFLEX_SYM_SOLVER_H
