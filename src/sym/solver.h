//===- sym/solver.h - Entailment engine -------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint engine behind the prover — the C++ analog of the
/// rewriting/contradiction-finding that the paper's Ltac tactics perform on
/// branch conditions ("adding branch conditions to the context is
/// essential here, as it prunes unfeasible paths", §5.1). It decides
/// conjunctions of literals over the term language:
///
///  * congruence closure over equalities (with component-field projection:
///    merging two component terms merges their config fields),
///  * distinctness from literals and from the component identity algebra,
///  * light integer bound propagation for `<`/`<=` and constant folding of
///    `+`/`-`.
///
/// The engine is *sound for Unsat*: checkLits returns Unsat only when the
/// literal set is genuinely contradictory; Maybe means "could not refute".
/// Entailment (entails) asks whether assumptions plus the negated goal are
/// Unsat, so a Maybe never lets a false obligation through — it produces
/// an Unknown verdict in the prover, mirroring the paper's explicitly
/// incomplete automation (§5.3).
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_SYM_SOLVER_H
#define REFLEX_SYM_SOLVER_H

#include "support/deadline.h"
#include "sym/term.h"

#include <array>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

namespace reflex {

enum class SatResult : uint8_t { Unsat, Maybe };

/// A cross-worker tier for the solver memo, sharded to keep lock traffic
/// off the hot path. Workers verifying properties of the same frozen
/// abstraction publish solved queries here and consult it after a private
/// memo miss. Only queries whose atoms all live in the frozen base context
/// are eligible (their ids — and hence the memo key — mean the same thing
/// in every worker's overlay); overlay-local queries stay private.
///
/// Sharing is semantically transparent: a hit returns exactly the result
/// solve() would have computed, because the solver is deterministic over a
/// fixed term context and expired-budget queries answer Maybe *before*
/// reaching the memo (so tainted results are never published).
class SharedSolverMemo {
public:
  std::optional<SatResult> lookup(uint64_t Key) const {
    const Bucket &B = shard(Key);
    std::shared_lock<std::shared_mutex> Lock(B.Mu);
    auto It = B.Map.find(Key);
    if (It == B.Map.end())
      return std::nullopt;
    return It->second;
  }

  void publish(uint64_t Key, SatResult R) {
    Bucket &B = shard(Key);
    std::unique_lock<std::shared_mutex> Lock(B.Mu);
    B.Map.emplace(Key, R);
  }

private:
  struct Bucket {
    mutable std::shared_mutex Mu;
    std::unordered_map<uint64_t, SatResult> Map;
  };
  static constexpr size_t NumShards = 16;
  Bucket &shard(uint64_t Key) { return Shards[(Key >> 4) % NumShards]; }
  const Bucket &shard(uint64_t Key) const {
    return Shards[(Key >> 4) % NumShards];
  }
  std::array<Bucket, NumShards> Shards;
};

/// Stateless decision procedures plus a memo table. One Solver instance is
/// shared across a verification run; the memo is keyed by sorted literal
/// ids, which is valid because terms are hash-consed in a single context.
class Solver {
public:
  explicit Solver(TermContext &Ctx) : Ctx(Ctx) {}

  /// Enables/disables the query memo. The memo is part of the "saving
  /// subproofs at key cut points" optimization (§6.4) and is switched off
  /// together with the invariant-proof cache in the ablation bench.
  void setMemoEnabled(bool On) { MemoEnabled = On; }

  /// Attaches (or detaches, with nullptr) a cross-worker memo tier. Only
  /// meaningful when Ctx is an overlay over a frozen base shared with the
  /// other workers; queries over base-only atoms are looked up/published
  /// there. No effect while the private memo is disabled.
  void setSharedMemo(SharedSolverMemo *M) { Shared = M; }

  /// Installs (or clears, with nullptr) a cooperative budget token.
  /// Every checkLits call polls it; once expired, queries answer Maybe —
  /// "could not refute" — without solving and without touching the memo
  /// (an expiry-Maybe must not poison results for later properties that
  /// share this solver). Maybe is always sound here, so an expired solver
  /// can only make the prover fail, never certify a false proof.
  void setDeadline(Deadline *D) { Budget = D; }

  /// Is the conjunction of \p Lits contradictory?
  SatResult checkLits(const std::vector<Lit> &Lits);

  /// Does the conjunction of \p Assume entail \p Goal? (Sound: true only
  /// when Assume ∧ ¬Goal is provably Unsat.)
  bool entails(const std::vector<Lit> &Assume, Lit Goal);

  /// Entailment of a conjunction of literals.
  bool entailsAll(const std::vector<Lit> &Assume,
                  const std::vector<Lit> &Goals);

  /// Satisfiability shorthand: true unless provably Unsat.
  bool maybeSat(const std::vector<Lit> &Lits) {
    return checkLits(Lits) == SatResult::Maybe;
  }

  /// Number of checkLits evaluations that missed the memo (a work proxy
  /// for the ablation bench).
  uint64_t queriesSolved() const { return QueriesSolved; }

private:
  SatResult solve(const std::vector<Lit> &Lits);

  TermContext &Ctx;
  std::unordered_map<uint64_t, SatResult> Memo;
  bool MemoEnabled = true;
  SharedSolverMemo *Shared = nullptr;
  Deadline *Budget = nullptr;
  uint64_t QueriesSolved = 0;
};

} // namespace reflex

#endif // REFLEX_SYM_SOLVER_H
