//===- trace/action.cc - Observable actions and traces ----------*- C++ -*-===//

#include "trace/action.h"

#include <sstream>

namespace reflex {

std::string Message::str() const {
  std::ostringstream OS;
  OS << Name << "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Args[I].str();
  }
  OS << ")";
  return OS.str();
}

std::string ComponentInstance::str() const {
  std::ostringstream OS;
  OS << TypeName << "#" << Id;
  if (!Config.empty()) {
    OS << "(";
    for (size_t I = 0; I < Config.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Config[I].str();
    }
    OS << ")";
  }
  return OS.str();
}

Action Action::select(int64_t CompId) {
  Action A;
  A.Kind = Select;
  A.CompId = CompId;
  return A;
}

Action Action::recv(int64_t CompId, Message M) {
  Action A;
  A.Kind = Recv;
  A.CompId = CompId;
  A.Msg = std::move(M);
  return A;
}

Action Action::send(int64_t CompId, Message M) {
  Action A;
  A.Kind = Send;
  A.CompId = CompId;
  A.Msg = std::move(M);
  return A;
}

Action Action::spawn(int64_t CompId) {
  Action A;
  A.Kind = Spawn;
  A.CompId = CompId;
  return A;
}

Action Action::call(std::string Fn, std::vector<Value> Args, Value Result) {
  Action A;
  A.Kind = Call;
  A.CallFn = std::move(Fn);
  A.CallArgs = std::move(Args);
  A.CallResult = Result;
  return A;
}

std::string Action::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case Select:
    OS << "Select(comp#" << CompId << ")";
    break;
  case Recv:
    OS << "Recv(comp#" << CompId << ", " << Msg.str() << ")";
    break;
  case Send:
    OS << "Send(comp#" << CompId << ", " << Msg.str() << ")";
    break;
  case Spawn:
    OS << "Spawn(comp#" << CompId << ")";
    break;
  case Call:
    OS << "Call(" << CallFn << ", [";
    for (size_t I = 0; I < CallArgs.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << CallArgs[I].str();
    }
    OS << "] -> " << CallResult.str() << ")";
    break;
  }
  return OS.str();
}

const ComponentInstance *Trace::findComponent(int64_t Id) const {
  for (const ComponentInstance &C : Components)
    if (C.Id == Id)
      return &C;
  return nullptr;
}

std::string Trace::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Actions.size(); ++I) {
    OS << I << ": " << Actions[I].str();
    if (Actions[I].CompId >= 0 && Actions[I].Kind != Action::Call)
      if (const ComponentInstance *C = findComponent(Actions[I].CompId))
        OS << "   # " << C->str();
    OS << "\n";
  }
  return OS.str();
}

} // namespace reflex
