//===- trace/action.h - Observable actions and traces -----------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The action alphabet and concrete traces of Reflex kernels (paper §3.2).
/// A trace records every observable interaction between the kernel and the
/// outside world: selecting a ready component, receiving a message from it,
/// sending messages, spawning components, and invoking native ("OCaml" in
/// the paper) call primitives.
///
/// Unlike the Coq development, which stores traces in reverse-chronological
/// order because of list consing, traces here are chronological (actions are
/// appended at the back). The §4.1 property definitions are implemented with
/// the order flipped accordingly; tests/prop_check_test.cc pins each
/// primitive to the paper's English semantics.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_TRACE_ACTION_H
#define REFLEX_TRACE_ACTION_H

#include "trace/value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace reflex {

/// A message exchanged between the kernel and a component: a declared
/// message type name plus its payload values.
struct Message {
  std::string Name;
  std::vector<Value> Args;

  bool operator==(const Message &Other) const = default;
  std::string str() const;
};

/// A live component instance: its declared type, the configuration values
/// fixed at spawn time (read-only thereafter — a deliberate LAC restriction
/// in the paper), and a unique id.
struct ComponentInstance {
  int64_t Id = 0;
  std::string TypeName;
  std::vector<Value> Config;

  std::string str() const;
};

/// One observable action.
struct Action {
  enum ActionKind : uint8_t {
    /// The kernel selected a ready component (paper: `Select(c)`).
    Select,
    /// The kernel received a message from a component.
    Recv,
    /// The kernel sent a message to a component.
    Send,
    /// The kernel spawned a new component instance.
    Spawn,
    /// The kernel invoked a native function (nondeterministic primitive).
    Call,
  };

  ActionKind Kind = Select;
  /// Component involved (Select/Recv/Send/Spawn). -1 for Call.
  int64_t CompId = -1;
  /// Message payload (Recv/Send only).
  Message Msg;
  /// Native call details (Call only).
  std::string CallFn;
  std::vector<Value> CallArgs;
  Value CallResult;

  static Action select(int64_t CompId);
  static Action recv(int64_t CompId, Message M);
  static Action send(int64_t CompId, Message M);
  static Action spawn(int64_t CompId);
  static Action call(std::string Fn, std::vector<Value> Args, Value Result);

  std::string str() const;
};

/// A concrete trace: chronological action list plus the table of all
/// component instances ever spawned (needed to resolve component ids to
/// types and configurations when matching action patterns).
struct Trace {
  std::vector<Action> Actions;
  std::vector<ComponentInstance> Components;

  const ComponentInstance *findComponent(int64_t Id) const;

  /// Renders the whole trace, one action per line, chronological order.
  std::string str() const;
};

} // namespace reflex

#endif // REFLEX_TRACE_ACTION_H
