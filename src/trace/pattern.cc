//===- trace/pattern.cc - Action patterns -----------------------*- C++ -*-===//

#include "trace/pattern.h"

#include <cassert>
#include <sstream>

namespace reflex {

PatTerm PatTerm::lit(Value V) {
  PatTerm T;
  T.Kind = Lit;
  T.LitVal = std::move(V);
  return T;
}

PatTerm PatTerm::var(std::string Name) {
  PatTerm T;
  T.Kind = Var;
  T.VarName = std::move(Name);
  return T;
}

PatTerm PatTerm::wild() { return PatTerm(); }

std::string PatTerm::str() const {
  switch (Kind) {
  case Lit:
    return LitVal.str();
  case Var:
    return VarName;
  case Wild:
    return "_";
  }
  return "?";
}

std::string CompPattern::str() const {
  std::ostringstream OS;
  OS << TypeName;
  if (!Fields.empty()) {
    OS << "(";
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << Fields[I].FieldName << " = " << Fields[I].Pat.str();
    }
    OS << ")";
  }
  return OS.str();
}

std::string MsgPattern::str() const {
  std::ostringstream OS;
  OS << MsgName << "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Args[I].str();
  }
  OS << ")";
  return OS.str();
}

std::string ActionPattern::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case Send:
    OS << "Send(" << Comp.str() << ", " << Msg.str() << ")";
    break;
  case Recv:
    OS << "Recv(" << Comp.str() << ", " << Msg.str() << ")";
    break;
  case Spawn:
    OS << "Spawn(" << Comp.str() << ")";
    break;
  }
  return OS.str();
}

static void collectPatTermVars(const PatTerm &T, std::set<std::string> &Out) {
  if (T.Kind == PatTerm::Var)
    Out.insert(T.VarName);
}

void ActionPattern::collectVars(std::set<std::string> &Out) const {
  for (const CompFieldPattern &F : Comp.Fields)
    collectPatTermVars(F.Pat, Out);
  if (Kind != Spawn)
    for (const PatTerm &Pat : Msg.Args)
      collectPatTermVars(Pat, Out);
}

/// Matches one pattern position against a concrete value, extending the
/// binding. The caller restores the binding on mismatch.
static bool matchPatTerm(const PatTerm &Pat, const Value &V, Binding &B) {
  switch (Pat.Kind) {
  case PatTerm::Wild:
    return true;
  case PatTerm::Lit:
    return Pat.LitVal == V;
  case PatTerm::Var: {
    auto It = B.find(Pat.VarName);
    if (It != B.end())
      return It->second == V;
    B.emplace(Pat.VarName, V);
    return true;
  }
  }
  return false;
}

bool matchAction(const Action &A, const ActionPattern &Pat, const Trace &Tr,
                 Binding &B) {
  switch (Pat.Kind) {
  case ActionPattern::Send:
    if (A.Kind != Action::Send)
      return false;
    break;
  case ActionPattern::Recv:
    if (A.Kind != Action::Recv)
      return false;
    break;
  case ActionPattern::Spawn:
    if (A.Kind != Action::Spawn)
      return false;
    break;
  }

  const ComponentInstance *C = Tr.findComponent(A.CompId);
  if (!C || C->TypeName != Pat.Comp.TypeName)
    return false;

  Binding Saved = B;

  for (const CompFieldPattern &F : Pat.Comp.Fields) {
    assert(F.FieldIndex >= 0 && "pattern not validated");
    if (static_cast<size_t>(F.FieldIndex) >= C->Config.size() ||
        !matchPatTerm(F.Pat, C->Config[F.FieldIndex], B)) {
      B = std::move(Saved);
      return false;
    }
  }

  if (Pat.Kind != ActionPattern::Spawn) {
    if (A.Msg.Name != Pat.Msg.MsgName ||
        A.Msg.Args.size() != Pat.Msg.Args.size()) {
      B = std::move(Saved);
      return false;
    }
    for (size_t I = 0; I < Pat.Msg.Args.size(); ++I) {
      if (!matchPatTerm(Pat.Msg.Args[I], A.Msg.Args[I], B)) {
        B = std::move(Saved);
        return false;
      }
    }
  }
  return true;
}

} // namespace reflex
