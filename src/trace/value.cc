//===- trace/value.cc - Runtime values ---------------------------*- C++ -*-===//

#include "trace/value.h"

#include "support/strings.h"

#include <cassert>
#include <functional>

namespace reflex {

const char *baseTypeName(BaseType Ty) {
  switch (Ty) {
  case BaseType::Num:
    return "num";
  case BaseType::Str:
    return "str";
  case BaseType::Bool:
    return "bool";
  case BaseType::Fdesc:
    return "fdesc";
  case BaseType::Comp:
    return "comp";
  }
  return "?";
}

Value Value::num(int64_t V) {
  Value Out;
  Out.Ty = BaseType::Num;
  Out.IntVal = V;
  return Out;
}

Value Value::str(std::string V) {
  Value Out;
  Out.Ty = BaseType::Str;
  Out.StrVal = std::move(V);
  return Out;
}

Value Value::boolean(bool V) {
  Value Out;
  Out.Ty = BaseType::Bool;
  Out.IntVal = V ? 1 : 0;
  return Out;
}

Value Value::fdesc(int64_t Handle) {
  Value Out;
  Out.Ty = BaseType::Fdesc;
  Out.IntVal = Handle;
  return Out;
}

Value Value::comp(int64_t CompId) {
  Value Out;
  Out.Ty = BaseType::Comp;
  Out.IntVal = CompId;
  return Out;
}

int64_t Value::asNum() const {
  assert(Ty == BaseType::Num && "not a num");
  return IntVal;
}

const std::string &Value::asStr() const {
  assert(Ty == BaseType::Str && "not a str");
  return StrVal;
}

bool Value::asBool() const {
  assert(Ty == BaseType::Bool && "not a bool");
  return IntVal != 0;
}

int64_t Value::asFdesc() const {
  assert(Ty == BaseType::Fdesc && "not an fdesc");
  return IntVal;
}

int64_t Value::asCompId() const {
  assert(Ty == BaseType::Comp && "not a comp");
  return IntVal;
}

bool Value::operator==(const Value &Other) const {
  if (Ty != Other.Ty)
    return false;
  if (Ty == BaseType::Str)
    return StrVal == Other.StrVal;
  return IntVal == Other.IntVal;
}

std::string Value::str() const {
  switch (Ty) {
  case BaseType::Num:
    return std::to_string(IntVal);
  case BaseType::Str:
    return "\"" + escapeString(StrVal) + "\"";
  case BaseType::Bool:
    return IntVal ? "true" : "false";
  case BaseType::Fdesc:
    return "fd#" + std::to_string(IntVal);
  case BaseType::Comp:
    return "comp#" + std::to_string(IntVal);
  }
  return "?";
}

size_t Value::hash() const {
  size_t H = static_cast<size_t>(Ty) * 0x9E3779B97F4A7C15ULL;
  if (Ty == BaseType::Str)
    H ^= std::hash<std::string>()(StrVal);
  else
    H ^= std::hash<int64_t>()(IntVal);
  return H;
}

} // namespace reflex
