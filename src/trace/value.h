//===- trace/value.h - Runtime values ---------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete runtime values of the Reflex DSL. The base types mirror the
/// paper's: numbers, strings, booleans, file descriptors (`fdesc`, opaque
/// handles passed between components, e.g. the PTY descriptor in the SSH
/// kernel), and component references.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_TRACE_VALUE_H
#define REFLEX_TRACE_VALUE_H

#include <cstdint>
#include <string>

namespace reflex {

/// The base types of the Reflex DSL.
enum class BaseType : uint8_t { Num, Str, Bool, Fdesc, Comp };

/// Returns the surface-syntax name of a base type ("num", "str", ...).
const char *baseTypeName(BaseType Ty);

/// A concrete value. Num/Fdesc/Comp/Bool are stored in an int64 payload;
/// Str in a string payload. Fdesc values are opaque descriptor ids handed
/// out by the runtime; Comp values are component instance ids.
class Value {
public:
  Value() : Ty(BaseType::Num), IntVal(0) {}

  static Value num(int64_t V);
  static Value str(std::string V);
  static Value boolean(bool V);
  static Value fdesc(int64_t Handle);
  static Value comp(int64_t CompId);

  BaseType type() const { return Ty; }

  int64_t asNum() const;
  const std::string &asStr() const;
  bool asBool() const;
  int64_t asFdesc() const;
  int64_t asCompId() const;

  bool operator==(const Value &Other) const;
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Renders the value in surface syntax (strings quoted, fdesc as
  /// `fd#N`, components as `comp#N`).
  std::string str() const;

  /// Hash suitable for unordered containers and BMC state hashing.
  size_t hash() const;

private:
  BaseType Ty;
  int64_t IntVal = 0;
  std::string StrVal;
};

} // namespace reflex

#endif // REFLEX_TRACE_VALUE_H
