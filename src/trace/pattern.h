//===- trace/pattern.h - Action patterns ------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Action patterns (paper §4.1): "actions whose fields can contain
/// literals, variables, or wildcards". For example
/// `Send(Tab(domain = d), Cookie(_, v))` matches any Send action whose
/// recipient is a Tab component with configuration field `domain` equal to
/// the (universally quantified) variable `d`, carrying a Cookie message
/// whose second payload value matches variable `v`.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_TRACE_PATTERN_H
#define REFLEX_TRACE_PATTERN_H

#include "trace/action.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace reflex {

/// One pattern position: a literal value, a quantified variable, or a
/// wildcard.
struct PatTerm {
  enum PatKind : uint8_t { Lit, Var, Wild };

  PatKind Kind = Wild;
  Value LitVal;        // Lit only
  std::string VarName; // Var only

  static PatTerm lit(Value V);
  static PatTerm var(std::string Name);
  static PatTerm wild();

  std::string str() const;
};

/// A constraint on one named configuration field of a component pattern.
/// FieldIndex is the field's position in the component type's declaration;
/// it is resolved by the semantic validator (-1 until then).
struct CompFieldPattern {
  std::string FieldName;
  int FieldIndex = -1;
  PatTerm Pat;
};

/// Matches components: a declared component type name plus constraints on
/// named configuration fields. Fields not mentioned are unconstrained.
struct CompPattern {
  std::string TypeName;
  std::vector<CompFieldPattern> Fields;

  std::string str() const;
};

/// Matches messages: a declared message type name plus one pattern per
/// payload position.
struct MsgPattern {
  std::string MsgName;
  std::vector<PatTerm> Args;

  std::string str() const;
};

/// A pattern over trace actions. Send/Recv patterns constrain both the
/// peer component and the message; Spawn patterns constrain the spawned
/// component. (Select and Call actions are not matchable — as in the
/// paper's property language, which ranges over Send/Recv/Spawn.)
struct ActionPattern {
  enum PatKind : uint8_t { Send, Recv, Spawn };

  PatKind Kind = Send;
  CompPattern Comp;
  MsgPattern Msg; // Send/Recv only

  std::string str() const;

  /// Collects the names of all variables occurring in this pattern.
  void collectVars(std::set<std::string> &Out) const;
};

/// A substitution of concrete values for pattern variables.
using Binding = std::map<std::string, Value>;

/// Attempts to match \p A against \p Pat, extending \p B. Variables already
/// bound in \p B must agree with the matched value; unbound variables are
/// bound. On failure \p B is left unchanged. The pattern must have been
/// validated (field indices resolved). \p Tr resolves the action's
/// component id to its type and configuration.
bool matchAction(const Action &A, const ActionPattern &Pat, const Trace &Tr,
                 Binding &B);

} // namespace reflex

#endif // REFLEX_TRACE_PATTERN_H
