//===- ast/printer.cc - AST pretty-printer ----------------------*- C++ -*-===//

#include "ast/printer.h"

#include "support/strings.h"

#include <sstream>

namespace reflex {

namespace {

void printExprInto(const Expr &E, std::ostringstream &OS) {
  switch (E.kind()) {
  case Expr::Lit:
    OS << cast<LitExpr>(E).value().str();
    return;
  case Expr::VarRef:
    OS << cast<VarRefExpr>(E).name();
    return;
  case Expr::SenderRef:
    OS << "sender";
    return;
  case Expr::ConfigRef: {
    const auto &CR = cast<ConfigRefExpr>(E);
    printExprInto(CR.base(), OS);
    OS << "." << CR.field();
    return;
  }
  case Expr::Unary: {
    OS << "!";
    const Expr &Op = cast<UnaryExpr>(E).operand();
    bool Paren = Op.kind() == Expr::Binary;
    if (Paren)
      OS << "(";
    printExprInto(Op, OS);
    if (Paren)
      OS << ")";
    return;
  }
  case Expr::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    auto printSide = [&](const Expr &Side) {
      bool Paren = Side.kind() == Expr::Binary;
      if (Paren)
        OS << "(";
      printExprInto(Side, OS);
      if (Paren)
        OS << ")";
    };
    printSide(B.lhs());
    OS << " " << binOpSpelling(B.op()) << " ";
    printSide(B.rhs());
    return;
  }
  }
}

void printCmdInto(const Cmd &C, unsigned Indent, std::ostringstream &OS) {
  std::string Pad(Indent * 2, ' ');
  switch (C.kind()) {
  case Cmd::Block:
    for (const CmdPtr &Sub : castCmd<BlockCmd>(C).commands())
      printCmdInto(*Sub, Indent, OS);
    return;
  case Cmd::Nop:
    OS << Pad << "nop;\n";
    return;
  case Cmd::Assign: {
    const auto &A = castCmd<AssignCmd>(C);
    OS << Pad << A.var() << " = " << printExpr(A.rhs()) << ";\n";
    return;
  }
  case Cmd::If: {
    const auto &If = castCmd<IfCmd>(C);
    OS << Pad << "if (" << printExpr(If.cond()) << ") {\n";
    printCmdInto(If.thenCmd(), Indent + 1, OS);
    if (If.elseCmd().kind() != Cmd::Nop) {
      OS << Pad << "} else {\n";
      printCmdInto(If.elseCmd(), Indent + 1, OS);
    }
    OS << Pad << "}\n";
    return;
  }
  case Cmd::Send: {
    const auto &S = castCmd<SendCmd>(C);
    OS << Pad << "send(" << printExpr(S.target()) << ", " << S.msgName()
       << "(";
    for (size_t I = 0; I < S.args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(*S.args()[I]);
    }
    OS << "));\n";
    return;
  }
  case Cmd::Spawn: {
    const auto &S = castCmd<SpawnCmd>(C);
    OS << Pad << S.bind() << " <- spawn " << S.compType() << "(";
    for (size_t I = 0; I < S.config().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(*S.config()[I]);
    }
    OS << ");\n";
    return;
  }
  case Cmd::Call: {
    const auto &Call = castCmd<CallCmd>(C);
    OS << Pad << Call.bind() << " <- call \"" << escapeString(Call.fn())
       << "\"(";
    for (size_t I = 0; I < Call.args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(*Call.args()[I]);
    }
    OS << ");\n";
    return;
  }
  case Cmd::Lookup: {
    const auto &L = castCmd<LookupCmd>(C);
    OS << Pad << "lookup " << L.compType() << "(";
    for (size_t I = 0; I < L.constraints().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << L.constraints()[I].Field << " == "
         << printExpr(*L.constraints()[I].Expr);
    }
    OS << ") as " << L.bind() << " {\n";
    printCmdInto(L.thenCmd(), Indent + 1, OS);
    if (L.elseCmd().kind() != Cmd::Nop) {
      OS << Pad << "} else {\n";
      printCmdInto(L.elseCmd(), Indent + 1, OS);
    }
    OS << Pad << "}\n";
    return;
  }
  }
}

} // namespace

std::string printExpr(const Expr &E) {
  std::ostringstream OS;
  printExprInto(E, OS);
  return OS.str();
}

std::string printCmd(const Cmd &C, unsigned Indent) {
  std::ostringstream OS;
  printCmdInto(C, Indent, OS);
  return OS.str();
}

std::string printProgram(const Program &P) {
  std::ostringstream OS;
  if (!P.Name.empty())
    OS << "program " << P.Name << ";\n\n";
  for (const ComponentTypeDecl &C : P.Components) {
    OS << "component " << C.Name << " \"" << escapeString(C.Executable)
       << "\"";
    if (!C.Config.empty()) {
      OS << " { ";
      for (size_t I = 0; I < C.Config.size(); ++I) {
        if (I != 0)
          OS << ", ";
        OS << C.Config[I].Name << ": " << baseTypeName(C.Config[I].Type);
      }
      OS << " }";
    }
    OS << ";\n";
  }
  OS << "\n";
  for (const MessageDecl &M : P.Messages) {
    OS << "message " << M.Name << "(";
    for (size_t I = 0; I < M.Payload.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << baseTypeName(M.Payload[I]);
    }
    OS << ");\n";
  }
  OS << "\n";
  for (const StateVarDecl &V : P.StateVars)
    OS << "var " << V.Name << ": " << baseTypeName(V.Type) << " = "
       << V.Init.str() << ";\n";
  if (P.Init && P.Init->kind() != Cmd::Nop) {
    OS << "\ninit {\n";
    printCmdInto(*P.Init, 1, OS);
    OS << "}\n";
  }
  for (const Handler &H : P.Handlers) {
    OS << "\nhandler " << H.CompType << " => " << H.MsgName << "(";
    for (size_t I = 0; I < H.Params.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << H.Params[I];
    }
    OS << ") {\n";
    printCmdInto(*H.Body, 1, OS);
    OS << "}\n";
  }
  for (const Property &Prop : P.Properties) {
    OS << "\nproperty " << Prop.Name << ":";
    if (Prop.isTrace()) {
      const TraceProperty &TP = Prop.traceProp();
      if (!TP.Vars.empty()) {
        OS << " forall ";
        for (size_t I = 0; I < TP.Vars.size(); ++I) {
          if (I != 0)
            OS << ", ";
          OS << TP.Vars[I];
        }
        OS << ".";
      }
      OS << "\n  [" << TP.A.str() << "] " << traceOpName(TP.Op) << " ["
         << TP.B.str() << "];\n";
    } else {
      const NIProperty &NI = Prop.niProp();
      if (NI.Param)
        OS << " forall " << *NI.Param << ".";
      OS << "\n  noninterference {\n    high components:";
      for (size_t I = 0; I < NI.HighComps.size(); ++I)
        OS << (I ? ", " : " ") << NI.HighComps[I].str();
      OS << ";\n    high vars:";
      for (size_t I = 0; I < NI.HighVars.size(); ++I)
        OS << (I ? ", " : " ") << NI.HighVars[I];
      OS << ";\n  };\n";
    }
  }
  return OS.str();
}

} // namespace reflex
