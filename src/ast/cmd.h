//===- ast/cmd.h - Reflex commands ------------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command AST of the Reflex DSL: the bodies of the init section and of
/// message handlers. The command language is "mostly standard imperative
/// programming features (assignment to global variables, sequencing,
/// branching)" plus the effectful primitives: send, spawn, call (invoke a
/// native function returning a string — the paper's escape hatch to OCaml),
/// and lookup (find an existing component by type and configuration).
///
/// Looping constructs are *deliberately absent* (paper §3.1): this is the
/// central LAC restriction that makes handlers symbolically evaluable by a
/// total function, which in turn is what makes BehAbs definable and the
/// proof automation complete enough to be useful.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_CMD_H
#define REFLEX_AST_CMD_H

#include "ast/expr.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace reflex {

class Cmd;
using CmdPtr = std::unique_ptr<Cmd>;

/// Base class of all commands.
class Cmd {
public:
  enum CmdKind : uint8_t {
    Block,  ///< `{ c1 c2 ... }`
    Assign, ///< `x = e`
    If,     ///< `if (e) { ... } else { ... }`
    Send,   ///< `send(e, Msg(e1, ...))`
    Spawn,  ///< `x <- spawn T(e1, ...)`
    Call,   ///< `x <- call "fn"(e1, ...)`
    Lookup, ///< `lookup T(f == e, ...) as x { ... } else { ... }`
    Nop,    ///< `nop` (explicit no-op; also the default handler body)
  };

  virtual ~Cmd() = default;

  CmdKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Cmd(CmdKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  CmdKind Kind;
  SourceLoc Loc;
};

/// A sequence of commands.
class BlockCmd : public Cmd {
public:
  BlockCmd(std::vector<CmdPtr> Cmds, SourceLoc Loc)
      : Cmd(Block, Loc), Cmds(std::move(Cmds)) {}

  const std::vector<CmdPtr> &commands() const { return Cmds; }

  static bool classof(const Cmd *C) { return C->kind() == Block; }

private:
  std::vector<CmdPtr> Cmds;
};

/// `x = e`: assignment to a global state variable. Handler parameters and
/// locals are immutable; component globals may not be reassigned (validator
/// enforces both).
class AssignCmd : public Cmd {
public:
  AssignCmd(std::string Var, ExprPtr RHS, SourceLoc Loc)
      : Cmd(Assign, Loc), Var(std::move(Var)), RHS(std::move(RHS)) {}

  const std::string &var() const { return Var; }
  const Expr &rhs() const { return *RHS; }

  static bool classof(const Cmd *C) { return C->kind() == Assign; }

private:
  std::string Var;
  ExprPtr RHS;
};

/// `if (e) { ... } else { ... }`. The else branch may be an empty block.
class IfCmd : public Cmd {
public:
  IfCmd(ExprPtr Cond, CmdPtr Then, CmdPtr Else, SourceLoc Loc)
      : Cmd(If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &cond() const { return *Cond; }
  const Cmd &thenCmd() const { return *Then; }
  const Cmd &elseCmd() const { return *Else; }

  static bool classof(const Cmd *C) { return C->kind() == If; }

private:
  ExprPtr Cond;
  CmdPtr Then;
  CmdPtr Else;
};

/// `send(target, Msg(args...))`: sends a message to a component. The
/// observable Send action this produces is what trace properties range
/// over.
class SendCmd : public Cmd {
public:
  SendCmd(ExprPtr Target, std::string MsgName, std::vector<ExprPtr> Args,
          SourceLoc Loc)
      : Cmd(Send, Loc), Target(std::move(Target)), MsgName(std::move(MsgName)),
        Args(std::move(Args)) {}

  const Expr &target() const { return *Target; }
  const std::string &msgName() const { return MsgName; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Cmd *C) { return C->kind() == Send; }

private:
  ExprPtr Target;
  std::string MsgName;
  std::vector<ExprPtr> Args;
};

/// `x <- spawn T(cfg...)`: spawns a new component of type T with the given
/// configuration values and binds it to x (a global when in init, a local
/// when in a handler).
class SpawnCmd : public Cmd {
public:
  SpawnCmd(std::string Bind, std::string CompType, std::vector<ExprPtr> Config,
           SourceLoc Loc)
      : Cmd(Spawn, Loc), Bind(std::move(Bind)), CompType(std::move(CompType)),
        Config(std::move(Config)) {}

  const std::string &bind() const { return Bind; }
  const std::string &compType() const { return CompType; }
  const std::vector<ExprPtr> &config() const { return Config; }

  static bool classof(const Cmd *C) { return C->kind() == Spawn; }

private:
  std::string Bind;
  std::string CompType;
  std::vector<ExprPtr> Config;
};

/// `x <- call "fn"(args...)`: invokes a native function (the paper's
/// "custom OCaml function returning a string"). The result is a str local.
/// From the kernel's perspective the result is *nondeterministic* — this
/// is the source of nondeterminism the paper's reactive non-interference
/// definition must contend with (§4.2).
class CallCmd : public Cmd {
public:
  CallCmd(std::string Bind, std::string Fn, std::vector<ExprPtr> Args,
          SourceLoc Loc)
      : Cmd(Call, Loc), Bind(std::move(Bind)), Fn(std::move(Fn)),
        Args(std::move(Args)) {}

  const std::string &bind() const { return Bind; }
  const std::string &fn() const { return Fn; }
  const std::vector<ExprPtr> &args() const { return Args; }

  static bool classof(const Cmd *C) { return C->kind() == Call; }

private:
  std::string Bind;
  std::string Fn;
  std::vector<ExprPtr> Args;
};

/// One `field == expr` constraint of a lookup.
struct LookupConstraint {
  std::string Field;
  int FieldIndex = -1; // resolved by the validator
  ExprPtr Expr;
};

/// `lookup T(f == e, ...) as x { ... } else { ... }`: searches the current
/// component set for a component of type T whose configuration satisfies
/// all constraints; binds it and runs the then-branch if found, else runs
/// the else-branch. The paper replaced a `broadcast` primitive with lookup
/// precisely because lookup emits a statically bounded number of actions
/// (§7, "Adapt language design to account for proof automation
/// challenges").
class LookupCmd : public Cmd {
public:
  LookupCmd(std::string Bind, std::string CompType,
            std::vector<LookupConstraint> Constraints, CmdPtr Then,
            CmdPtr Else, SourceLoc Loc)
      : Cmd(Lookup, Loc), Bind(std::move(Bind)),
        CompType(std::move(CompType)), Constraints(std::move(Constraints)),
        Then(std::move(Then)), Else(std::move(Else)) {}

  const std::string &bind() const { return Bind; }
  const std::string &compType() const { return CompType; }
  const std::vector<LookupConstraint> &constraints() const {
    return Constraints;
  }
  std::vector<LookupConstraint> &constraints() { return Constraints; }
  const Cmd &thenCmd() const { return *Then; }
  const Cmd &elseCmd() const { return *Else; }

  static bool classof(const Cmd *C) { return C->kind() == Lookup; }

private:
  std::string Bind;
  std::string CompType;
  std::vector<LookupConstraint> Constraints;
  CmdPtr Then;
  CmdPtr Else;
};

/// `nop`.
class NopCmd : public Cmd {
public:
  explicit NopCmd(SourceLoc Loc) : Cmd(Nop, Loc) {}

  static bool classof(const Cmd *C) { return C->kind() == Nop; }
};

/// Syntactic scans over command trees (see ast/cmd.cc). Used by the
/// prover's syntactic-skip optimization and the validator.
bool cmdSendsMessage(const Cmd &C, const std::string &MsgName);
bool cmdSpawnsType(const Cmd &C, const std::string &CompType);
bool cmdAssignsVar(const Cmd &C, const std::string &Var);
bool cmdHasCall(const Cmd &C);
bool cmdHasEffect(const Cmd &C);
void collectAssignedVars(const Cmd &C, std::set<std::string> &Out);
void collectSentMessages(const Cmd &C, std::set<std::string> &Out);
void collectSpawnedTypes(const Cmd &C, std::set<std::string> &Out);

/// Checked downcasts for commands (mirrors the Expr helpers).
template <typename T> const T *dynCastCmd(const Cmd *C) {
  return T::classof(C) ? static_cast<const T *>(C) : nullptr;
}
template <typename T> const T &castCmd(const Cmd &C) {
  assert(T::classof(&C) && "bad AST cast");
  return static_cast<const T &>(C);
}

} // namespace reflex

#endif // REFLEX_AST_CMD_H
