//===- ast/program.cc - A complete Reflex program ----------------*- C++ -*-===//

#include "ast/program.h"

namespace reflex {

const ComponentTypeDecl *
Program::findComponentType(const std::string &N) const {
  for (const ComponentTypeDecl &C : Components)
    if (C.Name == N)
      return &C;
  return nullptr;
}

const MessageDecl *Program::findMessage(const std::string &N) const {
  for (const MessageDecl &M : Messages)
    if (M.Name == N)
      return &M;
  return nullptr;
}

const StateVarDecl *Program::findStateVar(const std::string &N) const {
  for (const StateVarDecl &V : StateVars)
    if (V.Name == N)
      return &V;
  return nullptr;
}

const CompGlobal *Program::findCompGlobal(const std::string &N) const {
  for (const CompGlobal &G : CompGlobals)
    if (G.Name == N)
      return &G;
  return nullptr;
}

const Handler *Program::findHandler(const std::string &CompType,
                                    const std::string &MsgName) const {
  for (const Handler &H : Handlers)
    if (H.CompType == CompType && H.MsgName == MsgName)
      return &H;
  return nullptr;
}

const Property *Program::findProperty(const std::string &N) const {
  for (const Property &P : Properties)
    if (P.Name == N)
      return &P;
  return nullptr;
}

} // namespace reflex
