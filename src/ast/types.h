//===- ast/types.h - Reflex declarations ------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level declarations of a Reflex program: component types (with the
/// executable that backs each type and its read-only configuration
/// schema), message types, and global state variables.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_TYPES_H
#define REFLEX_AST_TYPES_H

#include "support/source_loc.h"
#include "trace/value.h"

#include <string>
#include <vector>

namespace reflex {

/// One field of a component type's configuration record. Configurations
/// are set at spawn time and read-only thereafter (LAC: this immutability
/// is what lets properties and the prover treat config constraints as
/// stable facts). Fields hold num/str/bool values.
struct ConfigField {
  std::string Name;
  BaseType Type = BaseType::Str;
};

/// `component Tab "tab.py" { domain: str, id: num }` — a component type:
/// its name, the executable on disk the kernel spawns for it (purely
/// descriptive in this reproduction; the runtime attaches a script
/// instead), and its configuration schema.
struct ComponentTypeDecl {
  std::string Name;
  std::string Executable;
  std::vector<ConfigField> Config;
  SourceLoc Loc;

  int findField(const std::string &FieldName) const {
    for (size_t I = 0; I < Config.size(); ++I)
      if (Config[I].Name == FieldName)
        return static_cast<int>(I);
    return -1;
  }
};

/// `message ReqAuth(str, str)` — a message type exchanged between the
/// kernel and components: name plus positional payload types. Payloads may
/// be num/str/bool/fdesc (not comp — component references never travel in
/// messages, another LAC restriction).
struct MessageDecl {
  std::string Name;
  std::vector<BaseType> Payload;
  SourceLoc Loc;
};

/// `var attempts: num = 0` — a global mutable state variable with its
/// (literal) initial value. Component-typed globals are not declared here;
/// they are bound by `X <- spawn T(...)` in the init section and are
/// immutable afterwards.
struct StateVarDecl {
  std::string Name;
  BaseType Type = BaseType::Num;
  Value Init;
  SourceLoc Loc;
};

/// Parses a surface-syntax base type name ("num", "str", "bool", "fdesc").
/// `comp` is not spellable: component-typed bindings only arise from
/// `spawn` and `lookup`.
bool baseTypeFromName(const std::string &Name, BaseType &Out);

} // namespace reflex

#endif // REFLEX_AST_TYPES_H
