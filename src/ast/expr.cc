//===- ast/expr.cc - Reflex expressions -------------------------*- C++ -*-===//

#include "ast/expr.h"

namespace reflex {

const char *binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  }
  return "?";
}

} // namespace reflex
