//===- ast/validate.cc - Static semantics of Reflex -------------*- C++ -*-===//

#include "ast/validate.h"

#include <map>
#include <set>
#include <sstream>

namespace reflex {

namespace {

/// What a name refers to inside a command scope.
struct Binding {
  enum BindKind {
    StateVar,
    CompGlobal,
    Param,
    LocalVal,  // call result (str)
    LocalComp, // spawn/lookup result
  };
  BindKind Kind = StateVar;
  BaseType Type = BaseType::Num;
  std::string CompType; // for comp-typed bindings
};

class Validator {
public:
  Validator(Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    checkDecls();
    if (Diags.hasErrors())
      return false;

    // Seed the global scope with state variables.
    for (const StateVarDecl &V : P.StateVars) {
      Binding B;
      B.Kind = Binding::StateVar;
      B.Type = V.Type;
      Globals[V.Name] = B;
    }

    // Init: spawns bind component globals.
    if (P.Init) {
      std::map<std::string, Binding> Scope = Globals;
      checkCmd(*P.Init, Scope, /*InInit=*/true, /*SenderType=*/"");
      // Export the component globals discovered in init so handlers see
      // them. (Branch-dependent bindings are rejected inside checkCmd.)
      Globals = Scope;
    }

    for (Handler &H : P.Handlers)
      checkHandler(H);

    checkHandlerUniqueness();

    for (Property &Prop : P.Properties)
      checkProperty(Prop);

    return !Diags.hasErrors();
  }

private:
  //===--------------------------------------------------------------------===
  // Declarations
  //===--------------------------------------------------------------------===

  void checkDecls() {
    std::set<std::string> Seen;
    for (const ComponentTypeDecl &C : P.Components) {
      if (!Seen.insert(C.Name).second)
        Diags.error(C.Loc, "duplicate component type '" + C.Name + "'");
      std::set<std::string> Fields;
      for (const ConfigField &F : C.Config)
        if (!Fields.insert(F.Name).second)
          Diags.error(C.Loc, "duplicate config field '" + F.Name + "' in '" +
                                 C.Name + "'");
    }
    Seen.clear();
    for (const MessageDecl &M : P.Messages) {
      if (!Seen.insert(M.Name).second)
        Diags.error(M.Loc, "duplicate message type '" + M.Name + "'");
      for (BaseType T : M.Payload)
        if (T == BaseType::Comp)
          Diags.error(M.Loc, "message payloads may not carry components");
    }
    Seen.clear();
    for (const StateVarDecl &V : P.StateVars) {
      if (!Seen.insert(V.Name).second)
        Diags.error(V.Loc, "duplicate state variable '" + V.Name + "'");
      if (V.Type == BaseType::Comp || V.Type == BaseType::Fdesc) {
        Diags.error(V.Loc,
                    "state variables must be num, str, or bool; "
                    "component references are bound by spawn in init");
      } else if (V.Init.type() != V.Type) {
        Diags.error(V.Loc, "initializer type does not match '" + V.Name +
                               ": " + baseTypeName(V.Type) + "'");
      }
    }
  }

  void checkHandlerUniqueness() {
    std::set<std::pair<std::string, std::string>> Seen;
    for (const Handler &H : P.Handlers)
      if (!Seen.insert({H.CompType, H.MsgName}).second)
        Diags.error(H.Loc, "duplicate handler for " + H.CompType + " => " +
                               H.MsgName);
  }

  //===--------------------------------------------------------------------===
  // Handlers and commands
  //===--------------------------------------------------------------------===

  void checkHandler(Handler &H) {
    const ComponentTypeDecl *CT = P.findComponentType(H.CompType);
    if (!CT) {
      Diags.error(H.Loc, "unknown component type '" + H.CompType + "'");
      return;
    }
    const MessageDecl *MD = P.findMessage(H.MsgName);
    if (!MD) {
      Diags.error(H.Loc, "unknown message type '" + H.MsgName + "'");
      return;
    }
    if (H.Params.size() != MD->Payload.size()) {
      std::ostringstream OS;
      OS << "handler declares " << H.Params.size() << " parameters but '"
         << H.MsgName << "' has " << MD->Payload.size() << " payload values";
      Diags.error(H.Loc, OS.str());
      return;
    }

    std::map<std::string, Binding> Scope = Globals;
    std::set<std::string> ParamNames;
    for (size_t I = 0; I < H.Params.size(); ++I) {
      const std::string &Name = H.Params[I];
      if (Name == "_")
        continue;
      if (!ParamNames.insert(Name).second)
        Diags.error(H.Loc, "duplicate parameter '" + Name + "'");
      if (Globals.count(Name))
        Diags.error(H.Loc, "parameter '" + Name +
                               "' shadows a global; rename it");
      Binding B;
      B.Kind = Binding::Param;
      B.Type = MD->Payload[I];
      Scope[Name] = B;
    }
    checkCmd(*H.Body, Scope, /*InInit=*/false, H.CompType);
  }

  void checkCmd(Cmd &C, std::map<std::string, Binding> &Scope, bool InInit,
                const std::string &SenderType) {
    switch (C.kind()) {
    case Cmd::Block: {
      auto &Blk = static_cast<BlockCmd &>(C);
      // Locals introduced by spawn/call/lookup inside nested blocks do not
      // escape; a block introduces a child scope seeded from the parent.
      // Bindings made directly in this block persist for the rest of it.
      for (const CmdPtr &Sub : Blk.commands())
        checkCmd(*Sub, Scope, InInit, SenderType);
      return;
    }
    case Cmd::Nop:
      return;
    case Cmd::Assign: {
      auto &A = static_cast<AssignCmd &>(C);
      auto It = Scope.find(A.var());
      if (It == Scope.end()) {
        Diags.error(C.loc(), "assignment to undeclared variable '" + A.var() +
                                 "'");
        return;
      }
      if (It->second.Kind != Binding::StateVar) {
        Diags.error(C.loc(),
                    "'" + A.var() +
                        "' is not assignable (parameters, locals, and "
                        "component bindings are immutable)");
        return;
      }
      BaseType Ty;
      if (!checkExpr(const_cast<Expr &>(A.rhs()), Scope, SenderType, Ty))
        return;
      if (Ty != It->second.Type)
        Diags.error(C.loc(), std::string("assigning ") + baseTypeName(Ty) +
                                 " to '" + A.var() + ": " +
                                 baseTypeName(It->second.Type) + "'");
      return;
    }
    case Cmd::If: {
      auto &If = static_cast<IfCmd &>(C);
      BaseType Ty;
      if (checkExpr(const_cast<Expr &>(If.cond()), Scope, SenderType, Ty) &&
          Ty != BaseType::Bool)
        Diags.error(If.cond().loc(), "branch condition must be bool");
      // Each branch gets its own scope copy: bindings do not escape.
      // Bindings made under a branch do not escape; in init they also do
      // not become component globals (a global must be unconditionally
      // bound).
      std::map<std::string, Binding> ThenScope = Scope;
      std::map<std::string, Binding> ElseScope = Scope;
      checkCmd(const_cast<Cmd &>(If.thenCmd()), ThenScope, false, SenderType);
      checkCmd(const_cast<Cmd &>(If.elseCmd()), ElseScope, false, SenderType);
      return;
    }
    case Cmd::Send: {
      auto &S = static_cast<SendCmd &>(C);
      BaseType Ty;
      if (checkExpr(const_cast<Expr &>(S.target()), Scope, SenderType, Ty) &&
          Ty != BaseType::Comp)
        Diags.error(S.target().loc(), "send target must be a component");
      const MessageDecl *MD = P.findMessage(S.msgName());
      if (!MD) {
        Diags.error(C.loc(), "unknown message type '" + S.msgName() + "'");
        return;
      }
      if (S.args().size() != MD->Payload.size()) {
        Diags.error(C.loc(), "wrong number of payload values for '" +
                                 S.msgName() + "'");
        return;
      }
      for (size_t I = 0; I < S.args().size(); ++I) {
        if (!checkExpr(*S.args()[I], Scope, SenderType, Ty))
          continue;
        if (Ty != MD->Payload[I])
          Diags.error(S.args()[I]->loc(),
                      std::string("payload value ") + std::to_string(I + 1) +
                          " of '" + S.msgName() + "' must be " +
                          baseTypeName(MD->Payload[I]) + ", found " +
                          baseTypeName(Ty));
      }
      return;
    }
    case Cmd::Spawn: {
      auto &S = static_cast<SpawnCmd &>(C);
      const ComponentTypeDecl *CT = P.findComponentType(S.compType());
      if (!CT) {
        Diags.error(C.loc(), "unknown component type '" + S.compType() + "'");
        return;
      }
      if (S.config().size() != CT->Config.size()) {
        Diags.error(C.loc(), "wrong number of config values for '" +
                                 S.compType() + "'");
        return;
      }
      for (size_t I = 0; I < S.config().size(); ++I) {
        BaseType Ty;
        if (!checkExpr(*S.config()[I], Scope, SenderType, Ty))
          continue;
        if (Ty != CT->Config[I].Type)
          Diags.error(S.config()[I]->loc(),
                      std::string("config field '") + CT->Config[I].Name +
                          "' of '" + S.compType() + "' must be " +
                          baseTypeName(CT->Config[I].Type));
      }
      if (Scope.count(S.bind())) {
        Diags.error(C.loc(), "'" + S.bind() + "' is already bound");
        return;
      }
      Binding B;
      B.Kind = InInit ? Binding::CompGlobal : Binding::LocalComp;
      B.Type = BaseType::Comp;
      B.CompType = S.compType();
      Scope[S.bind()] = B;
      if (InInit)
        P.CompGlobals.push_back({S.bind(), S.compType()});
      return;
    }
    case Cmd::Call: {
      auto &Call = static_cast<CallCmd &>(C);
      for (const ExprPtr &Arg : Call.args()) {
        BaseType Ty;
        if (checkExpr(*Arg, Scope, SenderType, Ty) && Ty == BaseType::Comp)
          Diags.error(Arg->loc(),
                      "components may not be passed to native calls");
      }
      if (Scope.count(Call.bind())) {
        Diags.error(C.loc(), "'" + Call.bind() + "' is already bound");
        return;
      }
      Binding B;
      B.Kind = Binding::LocalVal;
      B.Type = BaseType::Str;
      Scope[Call.bind()] = B;
      return;
    }
    case Cmd::Lookup: {
      auto &L = static_cast<LookupCmd &>(C);
      const ComponentTypeDecl *CT = P.findComponentType(L.compType());
      if (!CT) {
        Diags.error(C.loc(), "unknown component type '" + L.compType() + "'");
        return;
      }
      for (LookupConstraint &LC : L.constraints()) {
        LC.FieldIndex = CT->findField(LC.Field);
        if (LC.FieldIndex < 0) {
          Diags.error(C.loc(), "'" + L.compType() + "' has no config field '" +
                                   LC.Field + "'");
          continue;
        }
        BaseType Ty;
        if (checkExpr(*LC.Expr, Scope, SenderType, Ty) &&
            Ty != CT->Config[LC.FieldIndex].Type)
          Diags.error(LC.Expr->loc(),
                      "lookup constraint type mismatch on field '" + LC.Field +
                          "'");
      }
      if (Scope.count(L.bind())) {
        Diags.error(C.loc(), "'" + L.bind() + "' is already bound");
        return;
      }
      std::map<std::string, Binding> ThenScope = Scope;
      Binding B;
      B.Kind = Binding::LocalComp;
      B.Type = BaseType::Comp;
      B.CompType = L.compType();
      ThenScope[L.bind()] = B;
      std::map<std::string, Binding> ElseScope = Scope;
      checkCmd(const_cast<Cmd &>(L.thenCmd()), ThenScope, false, SenderType);
      checkCmd(const_cast<Cmd &>(L.elseCmd()), ElseScope, false, SenderType);
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===

  /// Type-checks \p E in \p Scope, returning false on error. On success
  /// sets \p Out, annotates E.setType(), resolves variable kinds and
  /// config-field indices. CompTypeOut (optional) receives the component
  /// type name when Out == Comp.
  bool checkExpr(Expr &E, const std::map<std::string, Binding> &Scope,
                 const std::string &SenderType, BaseType &Out,
                 std::string *CompTypeOut = nullptr) {
    switch (E.kind()) {
    case Expr::Lit: {
      Out = static_cast<LitExpr &>(E).value().type();
      E.setType(Out);
      return true;
    }
    case Expr::VarRef: {
      auto &V = static_cast<VarRefExpr &>(E);
      auto It = Scope.find(V.name());
      if (It == Scope.end()) {
        Diags.error(E.loc(), "undefined variable '" + V.name() + "'");
        return false;
      }
      const Binding &B = It->second;
      switch (B.Kind) {
      case Binding::StateVar:
        V.setVarKind(VarRefExpr::StateVar);
        break;
      case Binding::CompGlobal:
        V.setVarKind(VarRefExpr::CompGlobal);
        break;
      case Binding::Param:
        V.setVarKind(VarRefExpr::Param);
        break;
      case Binding::LocalVal:
      case Binding::LocalComp:
        V.setVarKind(VarRefExpr::Local);
        break;
      }
      Out = B.Type;
      E.setType(Out);
      if (CompTypeOut && Out == BaseType::Comp)
        *CompTypeOut = B.CompType;
      return true;
    }
    case Expr::SenderRef: {
      if (SenderType.empty()) {
        Diags.error(E.loc(), "'sender' is only available in handlers");
        return false;
      }
      Out = BaseType::Comp;
      E.setType(Out);
      if (CompTypeOut)
        *CompTypeOut = SenderType;
      return true;
    }
    case Expr::ConfigRef: {
      auto &CR = static_cast<ConfigRefExpr &>(E);
      BaseType BaseTy;
      std::string CompType;
      if (!checkExpr(const_cast<Expr &>(CR.base()), Scope, SenderType, BaseTy,
                     &CompType))
        return false;
      if (BaseTy != BaseType::Comp) {
        Diags.error(E.loc(), "'." + CR.field() +
                                 "' requires a component-typed expression");
        return false;
      }
      const ComponentTypeDecl *CT = P.findComponentType(CompType);
      assert(CT && "comp binding with unknown type");
      int Index = CT->findField(CR.field());
      if (Index < 0) {
        Diags.error(E.loc(), "'" + CompType + "' has no config field '" +
                                 CR.field() + "'");
        return false;
      }
      CR.setFieldIndex(Index);
      Out = CT->Config[Index].Type;
      E.setType(Out);
      return true;
    }
    case Expr::Unary: {
      auto &U = static_cast<UnaryExpr &>(E);
      BaseType Ty;
      if (!checkExpr(const_cast<Expr &>(U.operand()), Scope, SenderType, Ty))
        return false;
      if (Ty != BaseType::Bool) {
        Diags.error(E.loc(), "'!' requires a bool operand");
        return false;
      }
      Out = BaseType::Bool;
      E.setType(Out);
      return true;
    }
    case Expr::Binary: {
      auto &Bin = static_cast<BinaryExpr &>(E);
      BaseType L, R;
      if (!checkExpr(const_cast<Expr &>(Bin.lhs()), Scope, SenderType, L) ||
          !checkExpr(const_cast<Expr &>(Bin.rhs()), Scope, SenderType, R))
        return false;
      switch (Bin.op()) {
      case BinOp::Eq:
      case BinOp::Ne:
        if (L != R) {
          Diags.error(E.loc(), std::string("cannot compare ") +
                                   baseTypeName(L) + " with " +
                                   baseTypeName(R));
          return false;
        }
        if (L == BaseType::Comp) {
          // LAC restriction: component identity is established via lookup,
          // never via equality tests, which keeps the symbolic component
          // reasoning decidable.
          Diags.error(E.loc(), "components cannot be compared; use lookup");
          return false;
        }
        Out = BaseType::Bool;
        break;
      case BinOp::And:
      case BinOp::Or:
        if (L != BaseType::Bool || R != BaseType::Bool) {
          Diags.error(E.loc(), std::string("'") + binOpSpelling(Bin.op()) +
                                   "' requires bool operands");
          return false;
        }
        Out = BaseType::Bool;
        break;
      case BinOp::Add:
      case BinOp::Sub:
        if (L != BaseType::Num || R != BaseType::Num) {
          Diags.error(E.loc(), std::string("'") + binOpSpelling(Bin.op()) +
                                   "' requires num operands");
          return false;
        }
        Out = BaseType::Num;
        break;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (L != BaseType::Num || R != BaseType::Num) {
          Diags.error(E.loc(), std::string("'") + binOpSpelling(Bin.op()) +
                                   "' requires num operands");
          return false;
        }
        Out = BaseType::Bool;
        break;
      }
      E.setType(Out);
      return true;
    }
    }
    return false;
  }

  //===--------------------------------------------------------------------===
  // Properties
  //===--------------------------------------------------------------------===

  /// Validates one pattern position against an expected type, recording
  /// variable uses for the trigger discipline and type-consistency checks.
  void checkPatTerm(const PatTerm &T, BaseType Expected, SourceLoc Loc,
                    const std::set<std::string> &Declared,
                    std::map<std::string, BaseType> &VarTypes,
                    std::set<std::string> &Used) {
    switch (T.Kind) {
    case PatTerm::Wild:
      return;
    case PatTerm::Lit:
      if (T.LitVal.type() != Expected)
        Diags.error(Loc, std::string("pattern literal ") + T.LitVal.str() +
                             " has type " + baseTypeName(T.LitVal.type()) +
                             ", expected " + baseTypeName(Expected));
      return;
    case PatTerm::Var: {
      if (!Declared.count(T.VarName)) {
        Diags.error(Loc, "pattern variable '" + T.VarName +
                             "' is not declared in the forall clause");
        return;
      }
      Used.insert(T.VarName);
      auto [It, Inserted] = VarTypes.emplace(T.VarName, Expected);
      if (!Inserted && It->second != Expected)
        Diags.error(Loc, "pattern variable '" + T.VarName +
                             "' is used at both " +
                             baseTypeName(It->second) + " and " +
                             baseTypeName(Expected) + " positions");
      return;
    }
    }
  }

  void checkCompPattern(CompPattern &CP, SourceLoc Loc,
                        const std::set<std::string> &Declared,
                        std::map<std::string, BaseType> &VarTypes,
                        std::set<std::string> &Used) {
    const ComponentTypeDecl *CT = P.findComponentType(CP.TypeName);
    if (!CT) {
      Diags.error(Loc, "unknown component type '" + CP.TypeName +
                           "' in pattern");
      return;
    }
    for (CompFieldPattern &F : CP.Fields) {
      F.FieldIndex = CT->findField(F.FieldName);
      if (F.FieldIndex < 0) {
        Diags.error(Loc, "'" + CP.TypeName + "' has no config field '" +
                             F.FieldName + "'");
        continue;
      }
      checkPatTerm(F.Pat, CT->Config[F.FieldIndex].Type, Loc, Declared,
                   VarTypes, Used);
    }
  }

  void checkActionPattern(ActionPattern &AP, SourceLoc Loc,
                          const std::set<std::string> &Declared,
                          std::map<std::string, BaseType> &VarTypes,
                          std::set<std::string> &Used) {
    checkCompPattern(AP.Comp, Loc, Declared, VarTypes, Used);
    if (AP.Kind == ActionPattern::Spawn)
      return;
    const MessageDecl *MD = P.findMessage(AP.Msg.MsgName);
    if (!MD) {
      Diags.error(Loc, "unknown message type '" + AP.Msg.MsgName +
                           "' in pattern");
      return;
    }
    if (AP.Msg.Args.size() != MD->Payload.size()) {
      Diags.error(Loc, "wrong number of payload patterns for '" +
                           AP.Msg.MsgName + "'");
      return;
    }
    for (size_t I = 0; I < AP.Msg.Args.size(); ++I)
      checkPatTerm(AP.Msg.Args[I], MD->Payload[I], Loc, Declared, VarTypes,
                   Used);
  }

  void checkProperty(Property &Prop) {
    if (Prop.isTrace()) {
      auto &TP = std::get<TraceProperty>(Prop.Body);
      std::set<std::string> Declared(TP.Vars.begin(), TP.Vars.end());
      if (Declared.size() != TP.Vars.size())
        Diags.error(Prop.Loc, "duplicate forall variable");
      std::map<std::string, BaseType> VarTypes;
      std::set<std::string> UsedA, UsedB;
      checkActionPattern(TP.A, Prop.Loc, Declared, VarTypes, UsedA);
      checkActionPattern(TP.B, Prop.Loc, Declared, VarTypes, UsedB);

      // Trigger-variable discipline: every variable must occur in the
      // trigger pattern, so that a trigger occurrence determines a total
      // binding.
      const std::set<std::string> &TriggerUsed =
          TP.triggerIsB() ? UsedB : UsedA;
      for (const std::string &V : TP.Vars) {
        if (!UsedA.count(V) && !UsedB.count(V)) {
          Diags.error(Prop.Loc, "forall variable '" + V + "' is never used");
          continue;
        }
        if (!TriggerUsed.count(V))
          Diags.error(Prop.Loc,
                      "variable '" + V + "' must occur in the trigger "
                      "pattern (" +
                          std::string(TP.triggerIsB() ? "B" : "A") + " of " +
                          traceOpName(TP.Op) +
                          ") so occurrences determine its value");
      }
    } else {
      auto &NI = std::get<NIProperty>(Prop.Body);
      std::set<std::string> Declared;
      if (NI.Param)
        Declared.insert(*NI.Param);
      std::map<std::string, BaseType> VarTypes;
      std::set<std::string> Used;
      for (CompPattern &CP : NI.HighComps)
        checkCompPattern(CP, Prop.Loc, Declared, VarTypes, Used);
      if (NI.Param && !Used.count(*NI.Param))
        Diags.error(Prop.Loc, "forall variable '" + *NI.Param +
                                  "' is never used");
      for (const std::string &V : NI.HighVars)
        if (!P.findStateVar(V))
          Diags.error(Prop.Loc, "unknown state variable '" + V +
                                    "' in high vars");
    }
  }

  Program &P;
  DiagnosticEngine &Diags;
  std::map<std::string, Binding> Globals;
};

} // namespace

bool validateProgram(Program &P, DiagnosticEngine &Diags) {
  P.CompGlobals.clear();
  return Validator(P, Diags).run();
}

} // namespace reflex
