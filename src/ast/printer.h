//===- ast/printer.h - AST pretty-printer -----------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to Reflex surface syntax. The output reparses to an
/// equivalent program (tests/roundtrip_test.cc), which is also how the
/// kernels module keeps its embedded sources honest.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_PRINTER_H
#define REFLEX_AST_PRINTER_H

#include "ast/program.h"

#include <string>

namespace reflex {

/// Renders a full program.
std::string printProgram(const Program &P);

/// Renders a single expression / command (for diagnostics and
/// certificates).
std::string printExpr(const Expr &E);
std::string printCmd(const Cmd &C, unsigned Indent = 0);

} // namespace reflex

#endif // REFLEX_AST_PRINTER_H
