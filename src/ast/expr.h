//===- ast/expr.h - Reflex expressions --------------------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression AST of the Reflex DSL. Expressions appear in handler bodies
/// (assignments, send payloads, branch conditions, lookup constraints) and
/// are deliberately small: literals, variable references, the implicit
/// `sender` of a handler, configuration-field reads, and a handful of
/// operators. There are no function calls here (effectful `call` is a
/// command) and no loops anywhere — LAC restrictions that make exhaustive
/// symbolic evaluation of handlers possible (paper §3, §7).
///
/// Nodes use LLVM-style kind discrimination (no RTTI). The validator
/// annotates every node with its base type.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_EXPR_H
#define REFLEX_AST_EXPR_H

#include "support/source_loc.h"
#include "trace/value.h"

#include <cassert>
#include <memory>
#include <string>

namespace reflex {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Binary operators. Eq/Ne apply to any base type except comp (the
/// validator rejects component equality — identification of components is
/// done with `lookup`, a LAC decision that keeps the solver's component
/// reasoning simple). Ordering and arithmetic apply to num; And/Or to bool.
enum class BinOp : uint8_t { Eq, Ne, And, Or, Add, Sub, Lt, Le, Gt, Ge };

const char *binOpSpelling(BinOp Op);

/// Base class of all expressions.
class Expr {
public:
  enum ExprKind : uint8_t {
    Lit,       ///< num/str/bool literal
    VarRef,    ///< state variable, handler parameter, or local binding
    SenderRef, ///< the component whose message the handler services
    ConfigRef, ///< `e.field` where e has comp type
    Unary,     ///< `!e`
    Binary,    ///< `e1 op e2`
  };

  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Base type, set by the validator (meaningless before validation).
  BaseType type() const { return Ty; }
  void setType(BaseType T) { Ty = T; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  BaseType Ty = BaseType::Num;
};

/// A num, str, or bool literal.
class LitExpr : public Expr {
public:
  LitExpr(Value V, SourceLoc Loc) : Expr(Lit, Loc), Val(std::move(V)) {}

  const Value &value() const { return Val; }

  static bool classof(const Expr *E) { return E->kind() == Lit; }

private:
  Value Val;
};

/// A reference to a named variable. Which kind of variable (state var,
/// handler parameter, init-bound component, handler-local binding) is
/// resolved by the validator and recorded here.
class VarRefExpr : public Expr {
public:
  enum VarKind : uint8_t {
    Unresolved,
    StateVar,  ///< global mutable state variable
    CompGlobal,///< component bound by `<- spawn` in init (immutable)
    Param,     ///< handler message parameter
    Local,     ///< handler-local binding (spawn/call/lookup result)
  };

  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  VarKind varKind() const { return VK; }
  void setVarKind(VarKind K) { VK = K; }

  static bool classof(const Expr *E) { return E->kind() == VarRef; }

private:
  std::string Name;
  VarKind VK = Unresolved;
};

/// The implicit `sender` of a handler: the component the serviced message
/// was received from. Only valid inside handler bodies.
class SenderRefExpr : public Expr {
public:
  explicit SenderRefExpr(SourceLoc Loc) : Expr(SenderRef, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == SenderRef; }
};

/// `e.field`: reads a configuration field of a component-typed expression.
/// Configurations are read-only records fixed at spawn time (paper §3.1).
class ConfigRefExpr : public Expr {
public:
  ConfigRefExpr(ExprPtr Base, std::string Field, SourceLoc Loc)
      : Expr(ConfigRef, Loc), Base(std::move(Base)), Field(std::move(Field)) {}

  const Expr &base() const { return *Base; }
  const std::string &field() const { return Field; }
  /// Field position within the component type's config, resolved by the
  /// validator.
  int fieldIndex() const { return FieldIndex; }
  void setFieldIndex(int I) { FieldIndex = I; }

  static bool classof(const Expr *E) { return E->kind() == ConfigRef; }

private:
  ExprPtr Base;
  std::string Field;
  int FieldIndex = -1;
};

/// `!e` (boolean negation — the only unary operator).
class UnaryExpr : public Expr {
public:
  UnaryExpr(ExprPtr Operand, SourceLoc Loc)
      : Expr(Unary, Loc), Operand(std::move(Operand)) {}

  const Expr &operand() const { return *Operand; }

  static bool classof(const Expr *E) { return E->kind() == Unary; }

private:
  ExprPtr Operand;
};

/// `e1 op e2`.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(Binary, Loc), Op(Op), LHS(std::move(LHS)), RHS(std::move(RHS)) {}

  BinOp op() const { return Op; }
  const Expr &lhs() const { return *LHS; }
  const Expr &rhs() const { return *RHS; }

  static bool classof(const Expr *E) { return E->kind() == Binary; }

private:
  BinOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// LLVM-style checked downcast helpers (no RTTI).
template <typename T> const T *dynCast(const Expr *E) {
  return T::classof(E) ? static_cast<const T *>(E) : nullptr;
}
template <typename T> T *dynCast(Expr *E) {
  return T::classof(E) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T &cast(const Expr &E) {
  assert(T::classof(&E) && "bad AST cast");
  return static_cast<const T &>(E);
}
template <typename T> T &cast(Expr &E) {
  assert(T::classof(&E) && "bad AST cast");
  return static_cast<T &>(E);
}

} // namespace reflex

#endif // REFLEX_AST_EXPR_H
