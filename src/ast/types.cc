//===- ast/types.cc - Reflex declarations -----------------------*- C++ -*-===//

#include "ast/types.h"

namespace reflex {

// Declarations are plain data; helpers shared by the parser and validator
// live here.

/// Parses a surface-syntax type name. Returns true and sets \p Out on
/// success. `comp` is deliberately not a spellable type: component-typed
/// bindings only arise from `spawn` and `lookup`.
bool baseTypeFromName(const std::string &Name, BaseType &Out) {
  if (Name == "num") {
    Out = BaseType::Num;
    return true;
  }
  if (Name == "str") {
    Out = BaseType::Str;
    return true;
  }
  if (Name == "bool") {
    Out = BaseType::Bool;
    return true;
  }
  if (Name == "fdesc") {
    Out = BaseType::Fdesc;
    return true;
  }
  return false;
}

} // namespace reflex
