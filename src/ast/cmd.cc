//===- ast/cmd.cc - Reflex commands: syntactic scanners ---------*- C++ -*-===//
//
// Syntactic command scans. The prover's "syntactic skip" optimization
// (paper §6.4: "skipping symbolic evaluation of handlers for which a
// simple syntactic check suffices") uses these to decide, without symbolic
// evaluation, that a handler cannot possibly emit an action matching a
// trigger pattern or modify a guard variable.
//
//===----------------------------------------------------------------------===//

#include "ast/cmd.h"

namespace reflex {

namespace {

/// Applies \p Fn to every command in the tree rooted at \p C, stopping
/// early when Fn returns true. Returns whether any call returned true.
template <typename FnT> bool anyCmd(const Cmd &C, const FnT &Fn) {
  if (Fn(C))
    return true;
  switch (C.kind()) {
  case Cmd::Block:
    for (const CmdPtr &Sub : castCmd<BlockCmd>(C).commands())
      if (anyCmd(*Sub, Fn))
        return true;
    return false;
  case Cmd::If: {
    const auto &If = castCmd<IfCmd>(C);
    return anyCmd(If.thenCmd(), Fn) || anyCmd(If.elseCmd(), Fn);
  }
  case Cmd::Lookup: {
    const auto &L = castCmd<LookupCmd>(C);
    return anyCmd(L.thenCmd(), Fn) || anyCmd(L.elseCmd(), Fn);
  }
  default:
    return false;
  }
}

} // namespace

bool cmdSendsMessage(const Cmd &C, const std::string &MsgName) {
  return anyCmd(C, [&](const Cmd &Sub) {
    const auto *S = dynCastCmd<SendCmd>(&Sub);
    return S && S->msgName() == MsgName;
  });
}

bool cmdSpawnsType(const Cmd &C, const std::string &CompType) {
  return anyCmd(C, [&](const Cmd &Sub) {
    const auto *S = dynCastCmd<SpawnCmd>(&Sub);
    return S && S->compType() == CompType;
  });
}

bool cmdAssignsVar(const Cmd &C, const std::string &Var) {
  return anyCmd(C, [&](const Cmd &Sub) {
    const auto *A = dynCastCmd<AssignCmd>(&Sub);
    return A && A->var() == Var;
  });
}

bool cmdHasCall(const Cmd &C) {
  return anyCmd(C,
                [](const Cmd &Sub) { return Sub.kind() == Cmd::Call; });
}

bool cmdHasEffect(const Cmd &C) {
  return anyCmd(C, [](const Cmd &Sub) {
    switch (Sub.kind()) {
    case Cmd::Send:
    case Cmd::Spawn:
    case Cmd::Call:
    case Cmd::Assign:
      return true;
    default:
      return false;
    }
  });
}

void collectAssignedVars(const Cmd &C, std::set<std::string> &Out) {
  anyCmd(C, [&](const Cmd &Sub) {
    if (const auto *A = dynCastCmd<AssignCmd>(&Sub))
      Out.insert(A->var());
    return false;
  });
}

void collectSentMessages(const Cmd &C, std::set<std::string> &Out) {
  anyCmd(C, [&](const Cmd &Sub) {
    if (const auto *S = dynCastCmd<SendCmd>(&Sub))
      Out.insert(S->msgName());
    return false;
  });
}

void collectSpawnedTypes(const Cmd &C, std::set<std::string> &Out) {
  anyCmd(C, [&](const Cmd &Sub) {
    if (const auto *S = dynCastCmd<SpawnCmd>(&Sub))
      Out.insert(S->compType());
    return false;
  });
}

} // namespace reflex
