//===- ast/validate.h - Static semantics of Reflex --------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic validator. In the paper, Reflex is deeply embedded in Coq
/// and "heavy use of dependent types ensures that Reflex programmers never
/// 'go wrong' by attempting to access undefined variables or execute an
/// effectful primitive without satisfying its preconditions" (§3.1). C++
/// has no dependent types, so this module enforces the identical
/// well-formedness judgment as a total static check run before the program
/// reaches the prover or the interpreter:
///
///  * name resolution (variables, component types, messages, config fields),
///  * full expression typing (conditions are bool, payload arities/types
///    match declarations, no component equality),
///  * the immutability disciplines (params/locals/config/comp-globals are
///    read-only; comp globals bind only in init),
///  * property well-formedness, including the trigger-variable discipline
///    that makes universally quantified properties decidable.
///
/// Both the prover and the interpreter assert on programs that have not
/// passed validation.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_VALIDATE_H
#define REFLEX_AST_VALIDATE_H

#include "ast/program.h"
#include "support/diagnostics.h"

namespace reflex {

/// Validates \p P, reporting problems to \p Diags. Returns true iff no
/// errors were reported. Mutates \p P: annotates expression types,
/// resolves variable kinds, config-field indices (in expressions, lookup
/// constraints, and property patterns), and fills Program::CompGlobals.
bool validateProgram(Program &P, DiagnosticEngine &Diags);

} // namespace reflex

#endif // REFLEX_AST_VALIDATE_H
