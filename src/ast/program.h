//===- ast/program.h - A complete Reflex program ----------------*- C++ -*-===//
//
// Part of the Reflex/C++ reproduction of "Automating Formal Proofs for
// Reactive Systems" (PLDI 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete Reflex program, mirroring the five sections of the paper's
/// Figure 3: Components, Messages, (State +) Init, Handlers, Properties.
///
//===----------------------------------------------------------------------===//

#ifndef REFLEX_AST_PROGRAM_H
#define REFLEX_AST_PROGRAM_H

#include "ast/cmd.h"
#include "ast/types.h"
#include "prop/property.h"

#include <memory>
#include <string>
#include <vector>

namespace reflex {

/// `handler T => M(p1, ..., pk) { body }` — the kernel's response to a
/// message of type M from *any* component of type T (handlers dispatch on
/// component *types*, not instances; paper §2). Inside the body, `sender`
/// names the component the message came from.
struct Handler {
  std::string CompType;
  std::string MsgName;
  std::vector<std::string> Params;
  CmdPtr Body;
  SourceLoc Loc;
};

/// A component-typed global bound by `X <- spawn T(...)` in init. Recorded
/// by the validator so every phase (prover, interpreter) knows the type of
/// each component global; the binding is immutable after init.
struct CompGlobal {
  std::string Name;
  std::string CompType;
};

/// A complete Reflex program.
struct Program {
  std::string Name;
  std::vector<ComponentTypeDecl> Components;
  std::vector<MessageDecl> Messages;
  std::vector<StateVarDecl> StateVars;
  CmdPtr Init; // straight-line + branches; same command language
  std::vector<Handler> Handlers;
  std::vector<Property> Properties;

  /// Filled by the validator: component-typed globals bound in init.
  std::vector<CompGlobal> CompGlobals;

  const ComponentTypeDecl *findComponentType(const std::string &N) const;
  const MessageDecl *findMessage(const std::string &N) const;
  const StateVarDecl *findStateVar(const std::string &N) const;
  const CompGlobal *findCompGlobal(const std::string &N) const;
  const Handler *findHandler(const std::string &CompType,
                             const std::string &MsgName) const;
  const Property *findProperty(const std::string &N) const;
};

using ProgramPtr = std::unique_ptr<Program>;

} // namespace reflex

#endif // REFLEX_AST_PROGRAM_H
